// Benchmarks regenerating the paper's tables and figures. Each evaluation
// artifact has at least one bench:
//
//	Figure 1/2/4-7  → BenchmarkFigure1Series, BenchmarkFigure2PMFs,
//	                  BenchmarkFigure4to7Curves (analytic generation)
//	Figure 8        → BenchmarkFigure8ErrorSimulation (one run/iteration)
//	Figure 9        → BenchmarkFigure9TokenSimulation
//	Table 2         → BenchmarkTable2 (scaled-down row computation)
//	Figure 10       → BenchmarkFigure10 (scaled-down sweep)
//	Figure 11       → BenchmarkInsert*/BenchmarkEstimate*/
//	                  BenchmarkSerialize*/BenchmarkMerge* per algorithm
//
// plus ablation benches for the design choices called out in DESIGN.md
// (d-sweep, bias correction, token conversion).
//
// Absolute numbers depend on the host; the paper-relevant comparisons are
// the relative ones across algorithms.
package exaloglog_test

import (
	"fmt"
	"math"
	"testing"

	"exaloglog"
	"exaloglog/internal/compare"
	"exaloglog/internal/core"
	"exaloglog/internal/geomell"
	"exaloglog/internal/hashing"
	"exaloglog/internal/mvp"
	"exaloglog/internal/simulation"
)

// ---- Figure 11: per-operation micro-benchmarks per algorithm ----

func benchAlgorithms() []compare.Algorithm { return compare.Figure11Algorithms() }

func BenchmarkInsert(b *testing.B) {
	for _, a := range benchAlgorithms() {
		a := a
		b.Run(a.Name, func(b *testing.B) {
			c := a.New()
			var key [16]byte
			state := uint64(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := hashing.SplitMix64(&state)
				for j := 0; j < 8; j++ {
					key[j] = byte(v >> (8 * j))
				}
				h, _ := hashing.Murmur3_128(key[:], 0)
				c.AddHash(h)
			}
		})
	}
}

func BenchmarkEstimate(b *testing.B) {
	for _, a := range benchAlgorithms() {
		a := a
		b.Run(a.Name, func(b *testing.B) {
			c := a.New()
			state := uint64(2)
			for i := 0; i < 100000; i++ {
				c.AddHash(hashing.SplitMix64(&state))
			}
			b.ReportAllocs()
			b.ResetTimer()
			sink := 0.0
			for i := 0; i < b.N; i++ {
				sink += c.Estimate()
			}
			_ = sink
		})
	}
}

func BenchmarkSerialize(b *testing.B) {
	for _, a := range benchAlgorithms() {
		a := a
		b.Run(a.Name, func(b *testing.B) {
			c := a.New()
			state := uint64(3)
			for i := 0; i < 100000; i++ {
				c.AddHash(hashing.SplitMix64(&state))
			}
			b.ReportAllocs()
			b.ResetTimer()
			var n int
			for i := 0; i < b.N; i++ {
				n += len(c.Serialize())
			}
			_ = n
		})
	}
}

func BenchmarkMerge(b *testing.B) {
	for _, a := range benchAlgorithms() {
		a := a
		b.Run(a.Name, func(b *testing.B) {
			if err := a.New().Merge(a.New()); err != nil {
				// E.g. the HIP-tracking HLL: merging would invalidate its
				// running estimate (same reason the paper has no merge
				// numbers for some baselines).
				b.Skipf("not mergeable: %v", err)
			}
			other := a.New()
			state := uint64(4)
			for i := 0; i < 100000; i++ {
				other.AddHash(hashing.SplitMix64(&state))
			}
			c := a.New()
			st := uint64(5)
			for k := 0; k < 20000; k++ {
				c.AddHash(hashing.SplitMix64(&st))
			}
			// One warm-up merge so the timed loop measures the steady
			// state: scanning both register sets with almost no writes
			// (the union has already been absorbed). Rebuilding a fresh
			// receiver per iteration would cost ~1000x the merge itself
			// and drown the measurement in untimed setup.
			if err := c.Merge(other); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Merge(other); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMergeAndEstimate(b *testing.B) {
	for _, a := range benchAlgorithms() {
		a := a
		b.Run(a.Name, func(b *testing.B) {
			if err := a.New().Merge(a.New()); err != nil {
				// E.g. the HIP-tracking HLL: merging would invalidate its
				// running estimate (same reason the paper has no merge
				// numbers for some baselines).
				b.Skipf("not mergeable: %v", err)
			}
			other := a.New()
			state := uint64(6)
			for i := 0; i < 50000; i++ {
				other.AddHash(hashing.SplitMix64(&state))
			}
			c := a.New()
			st := uint64(7)
			for k := 0; k < 20000; k++ {
				c.AddHash(hashing.SplitMix64(&st))
			}
			// Steady-state protocol; see BenchmarkMerge.
			if err := c.Merge(other); err != nil {
				b.Fatal(err)
			}
			sink := 0.0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Merge(other); err != nil {
					b.Fatal(err)
				}
				sink += c.Estimate()
			}
			_ = sink
		})
	}
}

// ---- Figures 1, 2, 4-7: analytic series generation ----

func BenchmarkFigure1Series(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := mvp.Figure1([]float64{2, 3, 4, 5, 6, 8})
		if len(series) != 6 {
			b.Fatal("bad series")
		}
	}
}

func BenchmarkFigure2PMFs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, a := mvp.Figure2(2, 21)
		if len(g.Points) == 0 || len(a.Points) == 0 {
			b.Fatal("bad series")
		}
	}
}

func BenchmarkFigure4to7Curves(b *testing.B) {
	kinds := []mvp.CurveKind{mvp.KindDenseML, mvp.KindDenseMartingale, mvp.KindCompressedML, mvp.KindCompressedMartingale}
	for i := 0; i < b.N; i++ {
		for _, k := range kinds {
			for t := 0; t <= 3; t++ {
				c := mvp.Curve(k, t, 60)
				if len(c.Points) != 61 {
					b.Fatal("bad curve")
				}
			}
		}
	}
}

// ---- Figure 8: error simulation (one full run per iteration) ----

func BenchmarkFigure8ErrorSimulation(b *testing.B) {
	cfg := core.Config{T: 2, D: 20, P: 8}
	cps := simulation.Checkpoints(1e21, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := simulation.RunELL(cfg, cps, 1e4, uint64(i)+1, true)
		if len(res) != len(cps) {
			b.Fatal("bad result")
		}
	}
}

// ---- Figure 9: token estimation simulation ----

func BenchmarkFigure9TokenSimulation(b *testing.B) {
	cps := simulation.Checkpoints(1e5, 3)
	for i := 0; i < b.N; i++ {
		res := simulation.RunTokens(12, cps, uint64(i)+1)
		if len(res) != len(cps) {
			b.Fatal("bad result")
		}
	}
}

// ---- Table 2 / Figure 10: scaled-down sweeps ----

func BenchmarkTable2(b *testing.B) {
	algos := compare.Table2Algorithms()
	for i := 0; i < b.N; i++ {
		rows := compare.Table2(algos, 20000, 1, uint64(i)+1)
		if len(rows) != len(algos) {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	algos := compare.Table2Algorithms()[:2]
	ns := []int{10, 100, 1000, 10000}
	for i := 0; i < b.N; i++ {
		pts := compare.Figure10(algos, ns, 1, uint64(i)+1)
		if len(pts) != len(algos)*len(ns) {
			b.Fatal("bad points")
		}
	}
}

// ---- Ablations (DESIGN.md section 5) ----

// BenchmarkAblationInsertByD shows that insert cost is independent of d
// (constant-time insert regardless of register width).
func BenchmarkAblationInsertByD(b *testing.B) {
	for _, d := range []int{0, 8, 16, 20, 24} {
		d := d
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			s := core.MustNew(core.Config{T: 2, D: d, P: 10})
			state := uint64(11)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.AddHash(hashing.SplitMix64(&state))
			}
		})
	}
}

// BenchmarkAblationInsertByP shows that insert cost is independent of the
// precision (sketch size) — the paper's constant-time claim.
func BenchmarkAblationInsertByP(b *testing.B) {
	for _, p := range []int{4, 8, 12, 16, 20} {
		p := p
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			s := core.MustNew(core.Config{T: 2, D: 20, P: p})
			state := uint64(12)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.AddHash(hashing.SplitMix64(&state))
			}
		})
	}
}

// BenchmarkAblationMLSolver isolates the Newton solver cost (Algorithm 8).
func BenchmarkAblationMLSolver(b *testing.B) {
	s := core.MustNew(core.Config{T: 2, D: 20, P: 12})
	state := uint64(13)
	for i := 0; i < 500000; i++ {
		s.AddHash(hashing.SplitMix64(&state))
	}
	b.ResetTimer()
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += s.EstimateML()
	}
	_ = sink
}

// BenchmarkAblationMartingaleOverhead compares insert with and without
// martingale tracking.
func BenchmarkAblationMartingaleOverhead(b *testing.B) {
	for _, mart := range []bool{false, true} {
		mart := mart
		name := "off"
		if mart {
			name = "on"
		}
		b.Run("martingale="+name, func(b *testing.B) {
			s := core.MustNew(core.Config{T: 2, D: 16, P: 10})
			if mart {
				if err := s.EnableMartingale(); err != nil {
					b.Fatal(err)
				}
			}
			state := uint64(14)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.AddHash(hashing.SplitMix64(&state))
			}
		})
	}
}

// BenchmarkAblationTokenToDense times the sparse→dense conversion.
func BenchmarkAblationTokenToDense(b *testing.B) {
	ts, err := exaloglog.NewTokenSet(26)
	if err != nil {
		b.Fatal(err)
	}
	state := uint64(15)
	for i := 0; i < 10000; i++ {
		ts.AddHash(hashing.SplitMix64(&state))
	}
	cfg := exaloglog.Config{T: 2, D: 20, P: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ts.ToSketch(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCompressedSerialize compares the plain register copy
// with the entropy-coded serialization (Section 6 extension): the latter
// is far smaller but orders of magnitude slower — the CPC trade-off.
func BenchmarkAblationCompressedSerialize(b *testing.B) {
	s := core.MustNew(core.Config{T: 2, D: 20, P: 10})
	state := uint64(17)
	for i := 0; i < 100000; i++ {
		s.AddHash(hashing.SplitMix64(&state))
	}
	b.Run("plain", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			data, err := s.MarshalBinary()
			if err != nil {
				b.Fatal(err)
			}
			n += len(data)
		}
		_ = n
	})
	b.Run("entropy-coded", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			data, err := s.MarshalCompressed()
			if err != nil {
				b.Fatal(err)
			}
			n += len(data)
		}
		_ = n
	})
}

// BenchmarkHybridInsert measures sparse-mode vs dense-mode insert cost of
// the hybrid sketch.
func BenchmarkHybridInsert(b *testing.B) {
	h, err := exaloglog.NewHybrid(exaloglog.Config{T: 2, D: 20, P: 12})
	if err != nil {
		b.Fatal(err)
	}
	state := uint64(18)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.AddHash(hashing.SplitMix64(&state))
	}
}

// BenchmarkAtomicInsertParallel measures the CAS-based concurrent insert
// under contention from all available cores.
func BenchmarkAtomicInsertParallel(b *testing.B) {
	s := exaloglog.NewAtomic(12)
	b.RunParallel(func(pb *testing.PB) {
		state := uint64(19)
		for pb.Next() {
			s.AddHash(hashing.SplitMix64(&state))
		}
	})
}

// BenchmarkAblationUpdateDistribution compares inserting with the
// approximated update-value distribution (8) (branch-free shifts and a
// leading-zero count) against the exact geometric distribution (2)
// (floating-point log transform) — the engineering motivation of the
// paper's Section 2.2 for introducing (8).
func BenchmarkAblationUpdateDistribution(b *testing.B) {
	b.Run("approximate-eq8", func(b *testing.B) {
		s := core.MustNew(core.Config{T: 2, D: 16, P: 10})
		state := uint64(20)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.AddHash(hashing.SplitMix64(&state))
		}
	})
	b.Run("geometric-eq2", func(b *testing.B) {
		s, err := geomell.New(math.Pow(2, 0.25), 16, 10)
		if err != nil {
			b.Fatal(err)
		}
		state := uint64(20)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.AddHash(hashing.SplitMix64(&state))
		}
	})
}

// BenchmarkAblationMLSolverVsBisection compares ELL's specialized Newton
// solver (possible because (8) yields power-of-two likelihood terms)
// against the generic bisection the geometric variant is forced into.
func BenchmarkAblationMLSolverVsBisection(b *testing.B) {
	b.Run("newton-eq15", func(b *testing.B) {
		s := core.MustNew(core.Config{T: 2, D: 16, P: 8})
		state := uint64(21)
		for i := 0; i < 50000; i++ {
			s.AddHash(hashing.SplitMix64(&state))
		}
		b.ResetTimer()
		sink := 0.0
		for i := 0; i < b.N; i++ {
			sink += s.EstimateML()
		}
		_ = sink
	})
	b.Run("bisection-generic", func(b *testing.B) {
		s, err := geomell.New(math.Pow(2, 0.25), 16, 8)
		if err != nil {
			b.Fatal(err)
		}
		state := uint64(21)
		for i := 0; i < 50000; i++ {
			s.AddHash(hashing.SplitMix64(&state))
		}
		b.ResetTimer()
		sink := 0.0
		for i := 0; i < b.N; i++ {
			sink += s.EstimateML()
		}
		_ = sink
	})
}

// BenchmarkAblationReduce times lossless precision reduction (Algorithm 6).
func BenchmarkAblationReduce(b *testing.B) {
	s := core.MustNew(core.Config{T: 2, D: 20, P: 12})
	state := uint64(16)
	for i := 0; i < 200000; i++ {
		s.AddHash(hashing.SplitMix64(&state))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ReduceTo(16, 8); err != nil {
			b.Fatal(err)
		}
	}
}
