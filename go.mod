module exaloglog

go 1.22
