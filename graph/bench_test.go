package graph

import (
	"testing"

	"exaloglog/internal/core"
)

// BenchmarkApproxNeighborhood measures a full single-threaded HyperANF
// run on a preferential-attachment graph — the dominant cost is per-edge
// sketch merging, so this tracks the merge throughput of the core sketch.
// BenchmarkApproxNeighborhoodParallel is the same run at GOMAXPROCS.
func BenchmarkApproxNeighborhood(b *testing.B) {
	g := PreferentialAttachment(1000, 3, 7)
	cfg := core.Config{T: 2, D: 20, P: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ApproxNeighborhood(g, cfg, Options{Parallelism: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactNeighborhood is the exact all-pairs BFS baseline at the
// same size, for the asymptotic comparison (quadratic vs near-linear).
func BenchmarkExactNeighborhood(b *testing.B) {
	g := PreferentialAttachment(1000, 3, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ExactNeighborhood(g, 0)
	}
}
