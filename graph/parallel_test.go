package graph

import (
	"testing"

	"exaloglog/internal/core"
)

// TestParallelismDeterministic: any worker count yields exactly the same
// neighborhood function (per-node expansion only reads the previous
// iteration).
func TestParallelismDeterministic(t *testing.T) {
	g := PreferentialAttachment(400, 3, 11)
	cfg := core.Config{T: 2, D: 20, P: 6}
	var ref *Result
	for _, workers := range []int{1, 2, 7, 64} {
		res, err := ApproxNeighborhood(g, cfg, Options{Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if len(res.N) != len(ref.N) {
			t.Fatalf("workers=%d: %d radii vs %d", workers, len(res.N), len(ref.N))
		}
		for r := range res.N {
			if res.N[r] != ref.N[r] {
				t.Fatalf("workers=%d: N[%d] = %v != %v", workers, r, res.N[r], ref.N[r])
			}
		}
	}
}

// TestParallelismMoreWorkersThanNodes must not panic or deadlock.
func TestParallelismMoreWorkersThanNodes(t *testing.T) {
	g := Path(3)
	res, err := ApproxNeighborhood(g, core.Config{T: 2, D: 20, P: 4}, Options{Parallelism: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("tiny graph did not converge")
	}
}

func BenchmarkApproxNeighborhoodParallel(b *testing.B) {
	g := PreferentialAttachment(1000, 3, 7)
	cfg := core.Config{T: 2, D: 20, P: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ApproxNeighborhood(g, cfg, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
