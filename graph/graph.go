// Package graph implements approximate neighborhood-function estimation on
// large graphs with ExaLogLog sketches — the HyperANF algorithm of Boldi,
// Rosa and Vigna (WWW 2011), one of the motivating applications named in
// the paper's introduction (reference [7], "graph analysis").
//
// The neighborhood function N(r) counts the pairs of nodes within distance
// at most r. Computing it exactly needs an all-pairs BFS; HyperANF instead
// keeps one mergeable distinct-count sketch per node holding the set of
// nodes reachable within r hops, and advances r by merging each node's
// sketch with its neighbors' sketches. Everything HyperANF needs from the
// sketch — cheap union, idempotency, bounded error — ELL provides at 43 %
// less memory than the HyperLogLog counters used originally, which is
// exactly the regime (millions of counters at once) where the paper's
// space savings matter most.
package graph

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"exaloglog/internal/core"
)

// Graph is a simple directed graph with nodes 0..NumNodes-1 stored as
// adjacency lists. Use AddUndirectedEdge to build an undirected graph.
type Graph struct {
	adj [][]int32
}

// NewGraph returns an empty graph with n nodes and no edges.
func NewGraph(n int) *Graph {
	return &Graph{adj: make([][]int32, n)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, nbrs := range g.adj {
		total += len(nbrs)
	}
	return total
}

// AddEdge adds the directed edge u → v. Self-loops and parallel edges are
// permitted; they do not affect neighborhood estimates (sketch union is
// idempotent).
func (g *Graph) AddEdge(u, v int) {
	g.adj[u] = append(g.adj[u], int32(v))
}

// AddUndirectedEdge adds u → v and v → u.
func (g *Graph) AddUndirectedEdge(u, v int) {
	g.AddEdge(u, v)
	if u != v {
		g.AddEdge(v, u)
	}
}

// Neighbors returns the out-neighbors of u (shared slice; do not modify).
func (g *Graph) Neighbors(u int) []int32 { return g.adj[u] }

// Result holds an estimated neighborhood function.
type Result struct {
	// N[r] estimates the number of ordered node pairs (u, v) with
	// d(u, v) <= r; N[0] = number of nodes.
	N []float64
	// Iterations is the number of hop expansions performed.
	Iterations int
	// Converged reports whether the iteration stopped because the
	// estimate stabilized (rather than hitting the iteration cap).
	Converged bool
}

// Options configures ApproxNeighborhood.
type Options struct {
	// MaxIterations caps the number of hop expansions. Zero means the
	// number of nodes (an upper bound on any finite diameter).
	MaxIterations int
	// Epsilon is the relative change of ΣN under which the iteration is
	// considered converged. Zero means 1e-9 (effectively: no register
	// changed anywhere).
	Epsilon float64
	// Parallelism is the number of goroutines expanding nodes per hop.
	// Zero means GOMAXPROCS. The result is deterministic regardless of
	// the setting: each node's next sketch depends only on the previous
	// iteration's sketches.
	Parallelism int
}

// ApproxNeighborhood estimates the neighborhood function of g with one ELL
// sketch of configuration cfg per node. Memory is
// NumNodes·2^cfg.P·(6+t+d)/8 bytes; p=8 with ELL(2,20) costs 896 bytes per
// node for ≈2.3 % per-counter error, and errors largely average out in the
// sum over nodes.
func ApproxNeighborhood(g *Graph, cfg core.Config, opts Options) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if n == 0 {
		return &Result{N: []float64{0}, Converged: true}, nil
	}
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = n
	}
	eps := opts.Epsilon
	if eps <= 0 {
		eps = 1e-9
	}

	// b[v] holds the sketch of nodes within the current radius of v.
	b := make([]*core.Sketch, n)
	for v := range b {
		b[v] = core.MustNew(cfg)
		b[v].AddUint64(uint64(v))
	}
	res := &Result{N: []float64{sumEstimates(b)}}

	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	next := make([]*core.Sketch, n)
	for iter := 1; iter <= maxIter; iter++ {
		if err := expandHop(g, b, next, workers); err != nil {
			return nil, err
		}
		b, next = next, b
		total := sumEstimates(b)
		res.N = append(res.N, total)
		res.Iterations = iter
		prev := res.N[len(res.N)-2]
		if total <= prev*(1+eps) {
			res.Converged = true
			break
		}
	}
	return res, nil
}

// expandHop computes next[v] = b[v] ∪ ⋃_{(v,w)∈E} b[w] for all nodes,
// sharded over the given number of workers.
func expandHop(g *Graph, b, next []*core.Sketch, workers int) error {
	n := len(b)
	if workers <= 1 {
		return expandRange(g, b, next, 0, n)
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = expandRange(g, b, next, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// expandRange expands nodes [lo, hi).
func expandRange(g *Graph, b, next []*core.Sketch, lo, hi int) error {
	for v := lo; v < hi; v++ {
		nb := b[v].Clone()
		for _, w := range g.adj[v] {
			if err := nb.Merge(b[w]); err != nil {
				return fmt.Errorf("graph: %w", err)
			}
		}
		next[v] = nb
	}
	return nil
}

// sumEstimates returns Σ_v |b(v)|.
func sumEstimates(b []*core.Sketch) float64 {
	total := 0.0
	for _, s := range b {
		total += s.Estimate()
	}
	return total
}

// EffectiveDiameter returns the q-effective diameter: the interpolated
// smallest r such that N(r) >= q·N(r_max). The conventional q is 0.9.
func (r *Result) EffectiveDiameter(q float64) float64 {
	if len(r.N) == 0 {
		return 0
	}
	target := q * r.N[len(r.N)-1]
	for i, v := range r.N {
		if v >= target {
			if i == 0 {
				return 0
			}
			// Linear interpolation between (i-1, N[i-1]) and (i, N[i]).
			lo, hi := r.N[i-1], v
			if hi == lo {
				return float64(i)
			}
			return float64(i-1) + (target-lo)/(hi-lo)
		}
	}
	return float64(len(r.N) - 1)
}

// AverageDistance returns the estimated mean distance over all connected
// ordered pairs, Σ_r r·(N(r)-N(r-1)) / (N(r_max)-N(0)). Pairs (v, v) at
// distance 0 are excluded.
func (r *Result) AverageDistance() float64 {
	if len(r.N) < 2 {
		return 0
	}
	reachable := r.N[len(r.N)-1] - r.N[0]
	if reachable <= 0 {
		return 0
	}
	sum := 0.0
	for i := 1; i < len(r.N); i++ {
		sum += float64(i) * (r.N[i] - r.N[i-1])
	}
	return sum / reachable
}

// ExactNeighborhood computes the exact neighborhood function by BFS from
// every node, up to radius maxR (or the true eccentricity bound if maxR
// <= 0). Quadratic; intended as ground truth for tests and experiments on
// small graphs.
func ExactNeighborhood(g *Graph, maxR int) []float64 {
	n := g.NumNodes()
	if n == 0 {
		return []float64{0}
	}
	if maxR <= 0 {
		maxR = n - 1
	}
	counts := make([]float64, maxR+1)
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], int32(s))
		reached := []int{1} // reached[r] = nodes at distance exactly r
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			du := dist[u]
			if int(du) >= maxR {
				continue
			}
			for _, w := range g.adj[u] {
				if dist[w] < 0 {
					dist[w] = du + 1
					queue = append(queue, w)
					for len(reached) <= int(du)+1 {
						reached = append(reached, 0)
					}
					reached[du+1]++
				}
			}
		}
		cum := 0
		for r := 0; r <= maxR; r++ {
			if r < len(reached) {
				cum += reached[r]
			}
			counts[r] += float64(cum)
		}
	}
	// Trim the flat tail so len(counts)-1 is the largest finite distance.
	last := len(counts) - 1
	for last > 0 && counts[last] == counts[last-1] {
		last--
	}
	return counts[:last+1]
}

// RelativeError returns max_r |approx.N(r) - exact(r)| / exact(r) over the
// overlapping radius range — a convenience for experiments.
func RelativeError(approx *Result, exact []float64) float64 {
	worst := 0.0
	n := len(approx.N)
	if len(exact) < n {
		n = len(exact)
	}
	for r := 0; r < n; r++ {
		if exact[r] == 0 {
			continue
		}
		if e := math.Abs(approx.N[r]-exact[r]) / exact[r]; e > worst {
			worst = e
		}
	}
	return worst
}
