package graph_test

import (
	"fmt"

	"exaloglog"
	"exaloglog/graph"
)

// Estimate how tightly connected a social-style graph is without an
// all-pairs BFS.
func ExampleApproxNeighborhood() {
	g := graph.PreferentialAttachment(1000, 3, 42)
	res, err := graph.ApproxNeighborhood(g, exaloglog.Config{T: 2, D: 20, P: 8}, graph.Options{})
	if err != nil {
		panic(err)
	}
	d := res.EffectiveDiameter(0.9)
	fmt.Printf("small world (effective diameter < 6): %v\n", d < 6)
	fmt.Printf("all pairs reachable: %v\n", res.Converged)
	// Output:
	// small world (effective diameter < 6): true
	// all pairs reachable: true
}
