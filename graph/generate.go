package graph

import "exaloglog/internal/hashing"

// Deterministic graph generators for tests, examples and the experiment
// harness. All randomness comes from SplitMix64 seeded explicitly, so
// every run sees the same graph.

// Path returns the undirected path graph 0 — 1 — ... — n-1.
func Path(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddUndirectedEdge(i, i+1)
	}
	return g
}

// Cycle returns the undirected cycle graph on n nodes.
func Cycle(n int) *Graph {
	g := Path(n)
	if n > 2 {
		g.AddUndirectedEdge(n-1, 0)
	}
	return g
}

// Star returns the undirected star graph: node 0 connected to 1..n-1.
func Star(n int) *Graph {
	g := NewGraph(n)
	for i := 1; i < n; i++ {
		g.AddUndirectedEdge(0, i)
	}
	return g
}

// Random returns an undirected Erdős–Rényi-style graph with n nodes and
// approximately edges edges, drawn deterministically from seed.
func Random(n, edges int, seed uint64) *Graph {
	g := NewGraph(n)
	state := seed
	for e := 0; e < edges; e++ {
		u := int(hashing.SplitMix64(&state) % uint64(n))
		v := int(hashing.SplitMix64(&state) % uint64(n))
		if u != v {
			g.AddUndirectedEdge(u, v)
		}
	}
	return g
}

// PreferentialAttachment returns an undirected Barabási–Albert-style graph:
// each new node attaches to k endpoints sampled from the existing edge
// list, producing the heavy-tailed degree distribution of web and social
// graphs (the workloads HyperANF was designed for).
func PreferentialAttachment(n, k int, seed uint64) *Graph {
	g := NewGraph(n)
	if n == 0 {
		return g
	}
	state := seed
	// Endpoint pool: sampling uniformly from it is sampling nodes
	// proportionally to degree.
	pool := make([]int32, 0, 2*n*k)
	pool = append(pool, 0)
	for v := 1; v < n; v++ {
		attach := k
		if attach > v {
			attach = v
		}
		for j := 0; j < attach; j++ {
			w := pool[hashing.SplitMix64(&state)%uint64(len(pool))]
			g.AddUndirectedEdge(v, int(w))
			pool = append(pool, w)
		}
		pool = append(pool, int32(v))
	}
	return g
}
