package graph

import (
	"math"
	"testing"

	"exaloglog/internal/core"
)

var testCfg = core.Config{T: 2, D: 20, P: 10}

func TestExactNeighborhoodPath(t *testing.T) {
	// Path on 4 nodes: N(0)=4, N(1)=4+2·3=10? No — ordered pairs within
	// distance r. Distances: d(0,1)=1 … Enumerate: r=1 adds 6 ordered
	// adjacent pairs → 10; r=2 adds (0,2),(2,0),(1,3),(3,1) → 14; r=3
	// adds (0,3),(3,0) → 16 = n².
	g := Path(4)
	got := ExactNeighborhood(g, 0)
	want := []float64{4, 10, 14, 16}
	if len(got) != len(want) {
		t.Fatalf("ExactNeighborhood = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExactNeighborhood = %v, want %v", got, want)
		}
	}
}

func TestExactNeighborhoodStar(t *testing.T) {
	// Star on 5 nodes: r=1 adds 8 (center↔leaves); r=2 connects all.
	got := ExactNeighborhood(Star(5), 0)
	want := []float64{5, 13, 25}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("ExactNeighborhood = %v, want %v", got, want)
		}
	}
}

func TestExactNeighborhoodDirected(t *testing.T) {
	// Directed chain 0→1→2: reachability is asymmetric.
	g := NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	got := ExactNeighborhood(g, 0)
	// r=0: 3; r=1: +(0,1),(1,2) = 5; r=2: +(0,2) = 6.
	want := []float64{3, 5, 6}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("ExactNeighborhood = %v, want %v", got, want)
		}
	}
}

func TestApproxMatchesExactSmall(t *testing.T) {
	// On small structured graphs with p=10 the summed estimates are
	// within a few percent of the exact neighborhood function.
	for name, g := range map[string]*Graph{
		"path":  Path(50),
		"cycle": Cycle(60),
		"star":  Star(40),
	} {
		exact := ExactNeighborhood(g, 0)
		res, err := ApproxNeighborhood(g, testCfg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Errorf("%s: did not converge", name)
		}
		if e := RelativeError(res, exact); e > 0.08 {
			t.Errorf("%s: relative error %.1f%% too high", name, 100*e)
		}
		// Final totals must agree: every pair eventually reachable.
		gotFinal := res.N[len(res.N)-1]
		wantFinal := exact[len(exact)-1]
		if math.Abs(gotFinal-wantFinal)/wantFinal > 0.08 {
			t.Errorf("%s: final N %.0f, want %.0f", name, gotFinal, wantFinal)
		}
	}
}

func TestApproxRandomGraph(t *testing.T) {
	g := Random(300, 900, 7)
	exact := ExactNeighborhood(g, 0)
	res, err := ApproxNeighborhood(g, testCfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e := RelativeError(res, exact); e > 0.08 {
		t.Errorf("relative error %.1f%% too high", 100*e)
	}
}

func TestEffectiveDiameter(t *testing.T) {
	// Star graph: everything within distance 2, most pairs at distance 2.
	res, err := ApproxNeighborhood(Star(100), testCfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := res.EffectiveDiameter(0.9)
	if d < 1 || d > 2 {
		t.Errorf("star effective diameter %.2f, want in [1, 2]", d)
	}
	// Path graph on n nodes: 90 % of pairs within ~0.9·n hops — just
	// check it is large, unlike the star.
	resPath, err := ApproxNeighborhood(Path(100), testCfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dp := resPath.EffectiveDiameter(0.9); dp < 20 {
		t.Errorf("path effective diameter %.2f unexpectedly small", dp)
	}
}

func TestAverageDistance(t *testing.T) {
	// Complete bipartite-ish check on the star: leaves are at distance 2
	// from each other, 1 from the center. n=50: 98 ordered pairs at
	// distance 1, 49·48=2352 at distance 2 → mean ≈ 1.96.
	res, err := ApproxNeighborhood(Star(50), testCfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	avg := res.AverageDistance()
	if avg < 1.8 || avg > 2.1 {
		t.Errorf("star average distance %.3f, want ≈1.96", avg)
	}
}

func TestDisconnectedGraph(t *testing.T) {
	// Two disconnected edges: N converges to 8 (two 2-node cliques:
	// 4 + 4 ordered pairs).
	g := NewGraph(4)
	g.AddUndirectedEdge(0, 1)
	g.AddUndirectedEdge(2, 3)
	res, err := ApproxNeighborhood(g, testCfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("disconnected graph did not converge")
	}
	final := res.N[len(res.N)-1]
	if math.Abs(final-8) > 1 {
		t.Errorf("final N %.1f, want ≈8", final)
	}
}

func TestEmptyAndTrivialGraphs(t *testing.T) {
	res, err := ApproxNeighborhood(NewGraph(0), testCfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.N[0] != 0 {
		t.Errorf("empty graph result %+v", res)
	}
	res, err = ApproxNeighborhood(NewGraph(1), testCfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.N[len(res.N)-1]-1) > 0.1 {
		t.Errorf("single node final N %.2f, want 1", res.N[len(res.N)-1])
	}
}

func TestMaxIterationsCap(t *testing.T) {
	res, err := ApproxNeighborhood(Path(100), testCfg, Options{MaxIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("capped run reported convergence")
	}
	if res.Iterations != 3 {
		t.Errorf("Iterations = %d, want 3", res.Iterations)
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := ApproxNeighborhood(Path(4), core.Config{T: -1}, Options{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestGenerators(t *testing.T) {
	if g := Random(100, 300, 1); g.NumNodes() != 100 || g.NumEdges() == 0 {
		t.Error("Random generator produced no edges")
	}
	// Determinism.
	a, b := Random(50, 100, 9), Random(50, 100, 9)
	if a.NumEdges() != b.NumEdges() {
		t.Error("Random not deterministic")
	}
	pa := PreferentialAttachment(200, 2, 3)
	if pa.NumNodes() != 200 {
		t.Errorf("PA nodes = %d", pa.NumNodes())
	}
	// The PA graph must be connected: final exact N equals n².
	exact := ExactNeighborhood(pa, 0)
	if got := exact[len(exact)-1]; got != 200*200 {
		t.Errorf("PA graph not connected: final N = %.0f", got)
	}
	// Degree skew: node 0 (oldest) should have above-average degree.
	if len(pa.Neighbors(0)) <= 2 {
		t.Errorf("PA oldest node degree %d, expected hub behavior", len(pa.Neighbors(0)))
	}
}
