package exaloglog_test

import (
	"fmt"
	"math"
	"testing"

	"exaloglog"
)

// These tests exercise the newer public surface strictly through the
// exaloglog package, the way a downstream user would.

func TestPublicEstimateWithBounds(t *testing.T) {
	s := exaloglog.New(10)
	for i := 0; i < 50000; i++ {
		s.AddUint64(uint64(i))
	}
	iv, err := s.EstimateWithBounds(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !(iv.Lower < 50000 && 50000 < iv.Upper) {
		t.Errorf("95%% interval [%f, %f] misses the truth", iv.Lower, iv.Upper)
	}
	if iv.Confidence != 0.95 {
		t.Errorf("Confidence = %v", iv.Confidence)
	}
	if s.RelativeStandardError() <= 0 {
		t.Error("RelativeStandardError not positive")
	}
}

func TestPublicToken32List(t *testing.T) {
	list := exaloglog.NewToken32List()
	for i := 0; i < 5000; i++ {
		list.AddHash(hash64(uint64(i)))
	}
	if rel := math.Abs(list.EstimateML()-5000) / 5000; rel > 0.02 {
		t.Errorf("token estimate off by %.1f%%", 100*rel)
	}
	// Serialization through the public constructor.
	data, err := list.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ts, err := exaloglog.TokenSetFromBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Len() != list.Len() {
		t.Errorf("round trip %d tokens, want %d", ts.Len(), list.Len())
	}
	// Densify and keep counting.
	sketch, err := list.ToSketch(exaloglog.Config{T: 2, D: 20, P: 12})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(sketch.Estimate()-5000) / 5000; rel > 0.03 {
		t.Errorf("densified estimate off by %.1f%%", 100*rel)
	}
}

// hash64 is a stand-in for a user's hash function.
func hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func TestPublicTokenSetSerialization(t *testing.T) {
	ts, err := exaloglog.NewTokenSet(20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		ts.AddHash(hash64(uint64(i)))
	}
	data, err := ts.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := exaloglog.TokenSetFromBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.EstimateML() != ts.EstimateML() {
		t.Error("estimate changed across public serialization round trip")
	}
}

func ExampleSketch_EstimateWithBounds() {
	s := exaloglog.New(12)
	for i := 0; i < 100000; i++ {
		s.AddUint64(uint64(i))
	}
	iv, _ := s.EstimateWithBounds(0.95)
	fmt.Printf("truth inside 95%% interval: %v\n", iv.Lower <= 100000 && 100000 <= iv.Upper)
	// Output:
	// truth inside 95% interval: true
}
