package exaloglog_test

import (
	"fmt"
	"math"
	"testing"

	"exaloglog"
)

func TestPublicQuickstart(t *testing.T) {
	s := exaloglog.New(10)
	s.AddString("alice")
	s.AddString("bob")
	s.AddString("alice")
	got := s.Estimate()
	if math.Abs(got-2) > 0.1 {
		t.Errorf("estimate %.3f, want ≈2", got)
	}
}

func TestNewPanicsOnBadPrecision(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1) did not panic")
		}
	}()
	exaloglog.New(1)
}

func TestNewWithConfigValidation(t *testing.T) {
	if _, err := exaloglog.NewWithConfig(exaloglog.Config{T: 9, D: 0, P: 8}); err == nil {
		t.Error("accepted invalid t")
	}
	s, err := exaloglog.NewWithConfig(exaloglog.Config{T: 2, D: 24, P: 8})
	if err != nil {
		t.Fatal(err)
	}
	if s.SizeBytes() != 1024 {
		t.Errorf("size %d, want 1024", s.SizeBytes())
	}
}

func TestNewMartingale(t *testing.T) {
	s := exaloglog.NewMartingale(8)
	if !s.MartingaleEnabled() {
		t.Fatal("martingale not enabled")
	}
	for i := 0; i < 5000; i++ {
		s.AddUint64(uint64(i))
	}
	got := s.Estimate()
	if math.Abs(got-5000)/5000 > 0.1 {
		t.Errorf("estimate %.0f, want ≈5000", got)
	}
}

func TestPublicSerializationAndMerge(t *testing.T) {
	a := exaloglog.New(8)
	b := exaloglog.New(8)
	for i := 0; i < 3000; i++ {
		a.AddUint64(uint64(i))
	}
	for i := 2000; i < 6000; i++ {
		b.AddUint64(uint64(i))
	}
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := exaloglog.FromBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := a2.Merge(b); err != nil {
		t.Fatal(err)
	}
	got := a2.Estimate()
	if math.Abs(got-6000)/6000 > 0.15 {
		t.Errorf("merged estimate %.0f, want ≈6000", got)
	}
}

func TestPublicMergeCompatible(t *testing.T) {
	a, _ := exaloglog.NewWithConfig(exaloglog.Config{T: 2, D: 20, P: 10})
	b, _ := exaloglog.NewWithConfig(exaloglog.Config{T: 2, D: 16, P: 8})
	for i := 0; i < 4000; i++ {
		a.AddUint64(uint64(i))
		b.AddUint64(uint64(i + 2000))
	}
	m, err := exaloglog.MergeCompatible(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cfg := m.Config(); cfg.D != 16 || cfg.P != 8 {
		t.Errorf("merged config %+v, want d=16 p=8", cfg)
	}
	got := m.Estimate()
	if math.Abs(got-6000)/6000 > 0.2 {
		t.Errorf("estimate %.0f, want ≈6000", got)
	}
}

func TestPublicTokens(t *testing.T) {
	ts, err := exaloglog.NewTokenSet(26)
	if err != nil {
		t.Fatal(err)
	}
	h := uint64(0xdeadbeefcafebabe)
	ts.AddHash(h)
	w := exaloglog.TokenFromHash(h, 26)
	hr := exaloglog.HashFromToken(w, 26)
	if exaloglog.TokenFromHash(hr, 26) != w {
		t.Error("token round trip broken through the public API")
	}
	s, err := ts.ToSketch(exaloglog.Config{T: 2, D: 20, P: 10})
	if err != nil {
		t.Fatal(err)
	}
	if s.IsEmpty() {
		t.Error("dense sketch empty after token conversion")
	}
}

func TestPublicAtomic(t *testing.T) {
	s := exaloglog.NewAtomic(8)
	for i := 0; i < 10000; i++ {
		s.AddString(fmt.Sprintf("user-%d", i))
	}
	est := s.Estimate()
	if math.Abs(est-10000)/10000 > 0.15 {
		t.Errorf("atomic estimate %.0f", est)
	}
	snap := s.Snapshot()
	if snap.Config() != (exaloglog.Config{T: 2, D: 24, P: 8}) {
		t.Errorf("snapshot config %+v", snap.Config())
	}
}

func TestPublicHybrid(t *testing.T) {
	h, err := exaloglog.NewHybrid(exaloglog.Config{T: 2, D: 20, P: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !h.IsSparse() {
		t.Fatal("fresh hybrid not sparse")
	}
	for i := 0; i < 50; i++ {
		h.AddString(fmt.Sprintf("item-%d", i))
	}
	if got := h.Estimate(); math.Abs(got-50) > 5 {
		t.Errorf("sparse estimate %.1f", got)
	}
	data, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var h2 exaloglog.Hybrid
	if err := h2.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if h2.Estimate() != h.Estimate() {
		t.Error("hybrid round trip changed the estimate")
	}
}

func TestPublicCompressedSerialization(t *testing.T) {
	s := exaloglog.New(10)
	for i := 0; i < 50000; i++ {
		s.AddUint64(uint64(i))
	}
	plain, _ := s.MarshalBinary()
	comp, err := s.MarshalCompressed()
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) >= len(plain) {
		t.Errorf("compressed %d not below plain %d", len(comp), len(plain))
	}
	restored := &exaloglog.Sketch{}
	if err := restored.UnmarshalCompressed(comp); err != nil {
		t.Fatal(err)
	}
	if restored.EstimateML() != s.EstimateML() {
		t.Error("compressed round trip changed the estimate")
	}
}

func TestPrecisionBounds(t *testing.T) {
	if exaloglog.MinPrecision != 2 || exaloglog.MaxPrecision != 26 {
		t.Errorf("precision bounds %d..%d", exaloglog.MinPrecision, exaloglog.MaxPrecision)
	}
}

func ExampleNew() {
	sketch := exaloglog.New(12)
	for i := 0; i < 10000; i++ {
		sketch.AddString(fmt.Sprintf("user-%d", i%100))
	}
	fmt.Printf("≈ %.0f distinct users\n", sketch.Estimate())
	// Output: ≈ 100 distinct users
}

func ExampleSketch_Merge() {
	east := exaloglog.New(12)
	west := exaloglog.New(12)
	east.AddString("alice")
	west.AddString("alice") // seen in both regions
	west.AddString("bob")
	if err := east.Merge(west); err != nil {
		panic(err)
	}
	fmt.Printf("≈ %.0f distinct users overall\n", east.Estimate())
	// Output: ≈ 2 distinct users overall
}
