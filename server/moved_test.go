package server

import (
	"errors"
	"testing"

	"exaloglog/internal/core"
)

func TestParseMovedReply(t *testing.T) {
	_, err := parseReply("-MOVED e=7 n2=127.0.0.1:7701\n")
	mv, ok := AsMoved(err)
	if !ok {
		t.Fatalf("expected MovedError, got %v", err)
	}
	if mv.Epoch != 7 || mv.NodeID != "n2" || mv.Addr != "127.0.0.1:7701" {
		t.Fatalf("parsed %+v", mv)
	}
	if !IsReplyErr(err) {
		t.Error("a -MOVED line is a well-formed reply; IsReplyErr must hold")
	}
}

func TestParseMovedMalformedFallsThrough(t *testing.T) {
	// A reply that merely starts with MOVED but doesn't match the
	// payload grammar must degrade to an ordinary error reply, not be
	// silently mis-parsed.
	for _, line := range []string{
		"-MOVED\n",
		"-MOVED e=x n2=addr\n",
		"-MOVED e=7\n",
		"-MOVED e=7 n2addr\n",
		"-MOVED e=7 n2=addr extra\n",
	} {
		_, err := parseReply(line)
		if err == nil {
			t.Fatalf("%q parsed without error", line)
		}
		if _, ok := AsMoved(err); ok {
			t.Errorf("%q yielded a MovedError", line)
		}
		if !IsReplyErr(err) {
			t.Errorf("%q is still a well-formed reply line", line)
		}
	}
}

func TestReplyErrClassification(t *testing.T) {
	cases := []struct {
		line  string
		reply bool
	}{
		{"-ERR no such key\n", true},
		{"-ERR totally novel failure\n", true},
		{"-ERR count \"k\": WRONGTYPE key holds a value of another type\n", true},
		{"-MOVED e=1 n1=127.0.0.1:1\n", true},
		{"bogus\n", false}, // malformed stream: transport-grade
		{"\n", false},      // empty reply: transport-grade
	}
	for _, tc := range cases {
		_, err := parseReply(tc.line)
		if err == nil {
			t.Fatalf("%q parsed without error", tc.line)
		}
		if got := IsReplyErr(err); got != tc.reply {
			t.Errorf("IsReplyErr(%q) = %v, want %v", tc.line, got, tc.reply)
		}
	}
	// The sentinel mappings must survive the ReplyError wrapper.
	_, err := parseReply("-ERR no such key\n")
	if !errors.Is(err, ErrNoSuchKey) {
		t.Error("ErrNoSuchKey lost through ReplyError")
	}
	_, err = parseReply("-ERR count \"k\": WRONGTYPE key holds a value of another type\n")
	if !errors.Is(err, ErrWrongType) {
		t.Error("ErrWrongType lost through ReplyError")
	}
}

// TestPipelineMovedInterleaved proves the one-reply-one-line rule for
// -MOVED: a redirect interleaved between successful replies occupies
// exactly one reply slot, so the pipeline stays in sync and neighbors
// are unaffected.
func TestPipelineMovedInterleaved(t *testing.T) {
	store, err := NewStore(core.RecommendedML(12))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	srv.Handle("BOUNCE", func(args []string) string {
		return "-MOVED e=3 n9=10.0.0.9:7700"
	})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	pl := c.Pipeline()
	pl.PFAdd("k1", "a")
	pl.Do("BOUNCE", "k2")
	pl.PFAdd("k3", "b")
	pl.Do("BOUNCE", "k4")
	pl.PFCount("k1")
	results, err := pl.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d results, want 5", len(results))
	}
	if results[0].Err != nil || results[0].Value != "1" {
		t.Errorf("reply 0 = %+v, want PFADD success", results[0])
	}
	mv, ok := AsMoved(results[1].Err)
	if !ok || mv.Epoch != 3 || mv.NodeID != "n9" || mv.Addr != "10.0.0.9:7700" {
		t.Errorf("reply 1 = %+v, want MOVED e=3 n9", results[1].Err)
	}
	if results[2].Err != nil || results[2].Value != "1" {
		t.Errorf("reply 2 = %+v, want PFADD success", results[2])
	}
	if _, ok := AsMoved(results[3].Err); !ok {
		t.Errorf("reply 3 = %+v, want MOVED", results[3].Err)
	}
	if results[4].Err != nil || results[4].Value != "1" {
		t.Errorf("reply 4 = %+v, want count 1", results[4])
	}
	// The connection is still healthy after the interleaved errors.
	if err := c.Ping(); err != nil {
		t.Fatalf("connection desynced after interleaved -MOVED: %v", err)
	}
}
