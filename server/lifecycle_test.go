package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"exaloglog/internal/core"
)

// fakeClock is a deterministic store time source for lifecycle tests.
type fakeClock struct{ ms atomic.Int64 }

func (c *fakeClock) now() time.Time          { return time.UnixMilli(c.ms.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.ms.Add(d.Milliseconds()) }

func newClockedStore(t *testing.T, startMillis int64) (*Store, *fakeClock) {
	t.Helper()
	store := newTestStore(t)
	clk := &fakeClock{}
	clk.ms.Store(startMillis)
	store.SetClock(clk.now)
	return store, clk
}

// TestExpireLazyCollection: an expired key behaves exactly like a
// missing one on every read path, and the lazy collection shows up in
// the lifecycle gauges.
func TestExpireLazyCollection(t *testing.T) {
	store, clk := newClockedStore(t, 1_000_000)
	if _, err := store.Add("session", "alice", "bob"); err != nil {
		t.Fatal(err)
	}
	if !store.Expire("session", 5*time.Second) {
		t.Fatal("Expire on a live key returned false")
	}
	if dl, ok := store.DeadlineOf("session"); !ok || dl != 1_005_000 {
		t.Fatalf("DeadlineOf = %d, %v; want 1005000, true", dl, ok)
	}
	if n, _ := store.Count("session"); n < 1 {
		t.Fatalf("pre-deadline count = %v, want ≥1", n)
	}
	clk.advance(5 * time.Second) // exactly at the deadline: due
	if n, err := store.Count("session"); err != nil || n != 0 {
		t.Errorf("post-deadline count = %v, %v; want 0 (missing)", n, err)
	}
	if _, ok := store.Dump("session"); ok {
		t.Error("Dump returned an expired key")
	}
	if _, ok := store.DeadlineOf("session"); ok {
		t.Error("DeadlineOf saw an expired key")
	}
	for _, k := range store.Keys() {
		if k == "session" {
			t.Error("Keys listed an expired key")
		}
	}
	expired, _, _ := store.LifecycleStats()
	if expired != 1 {
		t.Errorf("expired_keys = %d, want 1", expired)
	}
}

// TestExpiredCountNoGhostEstimate is the satellite-1 regression: a
// single-key PFCOUNT populates the per-entry estimate cache; when the
// key then expires, a racing read must never serve that pre-expiry
// cached estimate. The dead mark, version bump and cache invalidation
// happen atomically under the entry lock, so even a reader that
// already holds the entry pointer re-checks and sees a dead sketch.
func TestExpiredCountNoGhostEstimate(t *testing.T) {
	store, clk := newClockedStore(t, 1_000_000)
	for i := 0; i < 256; i++ {
		if _, err := store.Add("hot", fmt.Sprintf("el-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if !store.Expire("hot", time.Second) {
		t.Fatal("Expire failed")
	}
	// Prime the estimate cache after the deadline is set.
	n, err := store.Count("hot")
	if err != nil || n < 100 {
		t.Fatalf("priming count = %v, %v", n, err)
	}
	hits0, _ := store.CacheStats()
	if n2, _ := store.Count("hot"); n2 != n {
		t.Fatalf("cached count %v != %v", n2, n)
	}
	if hits1, _ := store.CacheStats(); hits1 != hits0+1 {
		t.Fatalf("second count was not a cache hit (%d → %d)", hits0, hits1)
	}
	clk.advance(time.Second)
	if got, err := store.Count("hot"); err != nil || got != 0 {
		t.Errorf("count after expiry = %v, %v; want 0, nil — ghost estimate served", got, err)
	}
	// The recreated key starts empty: the old cache must not leak in.
	if _, err := store.Add("hot", "solo"); err != nil {
		t.Fatal(err)
	}
	if got, _ := store.Count("hot"); got > 2 {
		t.Errorf("recreated key counts %v, want ≈1 — pre-expiry state leaked", got)
	}
}

// TestDeleteIfUnchangedExpiryRace is the satellite-2 regression: a
// rebalance tag dumped before a key's deadline must not delete the key
// after it expired and was recreated — and setting the deadline itself
// is a version bump, so even the un-expired key is "changed".
func TestDeleteIfUnchangedExpiryRace(t *testing.T) {
	store, clk := newClockedStore(t, 1_000_000)
	if _, err := store.Add("contested", "original"); err != nil {
		t.Fatal(err)
	}
	tag, ok := store.DumpAllTagged()["contested"]
	if !ok {
		t.Fatal("DumpAllTagged missed the key")
	}
	// EXPIRE after the dump bumps the version: the tag is stale.
	if !store.Expire("contested", time.Second) {
		t.Fatal("Expire failed")
	}
	if store.DeleteIfUnchanged("contested", tag) {
		t.Fatal("stale tag deleted a key whose lifetime changed after the dump")
	}
	// Now let it expire and recreate it: the old tag must not touch the
	// successor.
	tag2 := store.DumpAllTagged()["contested"]
	clk.advance(2 * time.Second)
	if _, err := store.Add("contested", "successor"); err != nil {
		t.Fatal(err)
	}
	if store.DeleteIfUnchanged("contested", tag2) {
		t.Fatal("pre-expiry tag deleted the recreated key")
	}
	if n, _ := store.Count("contested"); n < 0.5 {
		t.Errorf("recreated key count = %v, want ≈1", n)
	}
}

// TestPersistCancelsDeadline: PERSIST removes the deadline and the key
// survives it; a second PERSIST reports nothing to remove.
func TestPersistCancelsDeadline(t *testing.T) {
	store, clk := newClockedStore(t, 1_000_000)
	if _, err := store.Add("k", "a"); err != nil {
		t.Fatal(err)
	}
	if store.Persist("k") {
		t.Error("Persist on a key without a deadline returned true")
	}
	store.Expire("k", time.Second)
	if !store.Persist("k") {
		t.Error("Persist on a deadlined key returned false")
	}
	clk.advance(time.Hour)
	if n, _ := store.Count("k"); n < 0.5 {
		t.Errorf("persisted key expired anyway (count %v)", n)
	}
}

// TestDefaultTTL: with a default TTL every created key gets a deadline
// stamped at creation; writes do not extend it; PERSIST lifts it.
func TestDefaultTTL(t *testing.T) {
	store, clk := newClockedStore(t, 1_000_000)
	store.SetDefaultTTL(10 * time.Second)
	if _, err := store.Add("ephemeral", "a"); err != nil {
		t.Fatal(err)
	}
	if dl, ok := store.DeadlineOf("ephemeral"); !ok || dl != 1_010_000 {
		t.Fatalf("default-TTL deadline = %d, %v; want 1010000, true", dl, ok)
	}
	clk.advance(9 * time.Second)
	if _, err := store.Add("ephemeral", "b"); err != nil { // write does not extend
		t.Fatal(err)
	}
	if _, err := store.Add("pinned", "x"); err != nil {
		t.Fatal(err)
	}
	if !store.Persist("pinned") {
		t.Fatal("Persist on a default-TTL key failed")
	}
	clk.advance(2 * time.Second)
	if n, _ := store.Count("ephemeral"); n != 0 {
		t.Errorf("default-TTL key survived its creation deadline (count %v)", n)
	}
	if n, _ := store.Count("pinned"); n < 0.5 {
		t.Errorf("persisted key expired (count %v)", n)
	}
	// A key recreated after expiry gets a fresh default deadline.
	if _, err := store.Add("ephemeral", "again"); err != nil {
		t.Fatal(err)
	}
	if dl, ok := store.DeadlineOf("ephemeral"); !ok || dl <= 1_011_000 {
		t.Errorf("recreated key deadline = %d, %v; want fresh stamp", dl, ok)
	}
}

// TestSweepExpired: the background sweeper reclaims due keys nobody
// reads. A full scan collects everything; the gauges account for it.
func TestSweepExpired(t *testing.T) {
	store, clk := newClockedStore(t, 1_000_000)
	const n = 200
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("ttl-%d", i)
		if _, err := store.Add(key, "x"); err != nil {
			t.Fatal(err)
		}
		if !store.Expire(key, time.Duration(1+i%5)*time.Second) {
			t.Fatal("Expire failed")
		}
	}
	if _, err := store.Add("forever", "x"); err != nil {
		t.Fatal(err)
	}
	if got := store.SweepExpired(0); got != 0 {
		t.Fatalf("sweep before any deadline collected %d keys", got)
	}
	clk.advance(5 * time.Second)
	if got := store.SweepExpired(0); got != n {
		t.Errorf("full sweep collected %d keys, want %d", got, n)
	}
	if store.Len() != 1 {
		t.Errorf("Len = %d after sweep, want 1", store.Len())
	}
	expired, _, _ := store.LifecycleStats()
	if expired != n {
		t.Errorf("expired_keys = %d, want %d", expired, n)
	}
	// Sampled sweeps converge over repeated ticks instead of scanning
	// everything at once.
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("ttl2-%d", i)
		store.Add(key, "x")
		store.Expire(key, time.Second)
	}
	clk.advance(2 * time.Second)
	collected, ticks := 0, 0
	for ; collected < n && ticks < 100; ticks++ {
		collected += store.SweepExpired(2)
	}
	if collected != n {
		t.Errorf("sampled sweeps collected %d/%d after %d ticks", collected, n, ticks)
	}
}

// TestEvictToWatermark: above the high watermark the store sheds the
// coldest keys (lowest entry version) until resident bytes reach the
// low watermark; recently-written keys survive.
func TestEvictToWatermark(t *testing.T) {
	store, _ := newClockedStore(t, 1_000_000)
	const n = 32
	for i := 0; i < n; i++ {
		if _, err := store.Add(fmt.Sprintf("k-%d", i), "seed"); err != nil {
			t.Fatal(err)
		}
	}
	// Heat up the upper half with extra writes: higher versions.
	for i := n / 2; i < n; i++ {
		for j := 0; j < 4; j++ {
			store.Add(fmt.Sprintf("k-%d", i), fmt.Sprintf("w-%d", j))
		}
	}
	_, _, resident := store.LifecycleStats()
	if resident <= 0 {
		t.Fatalf("resident_bytes = %d, want > 0", resident)
	}
	per := resident / n
	store.SetMemoryWatermarks(resident-1, resident-8*per)
	evicted := store.EvictToWatermark()
	if evicted == 0 {
		t.Fatal("no keys evicted above the high watermark")
	}
	_, evictedGauge, after := store.LifecycleStats()
	if evictedGauge != uint64(evicted) {
		t.Errorf("evicted_keys gauge %d != returned %d", evictedGauge, evicted)
	}
	if after > resident-8*per {
		t.Errorf("resident_bytes %d still above low watermark %d", after, resident-8*per)
	}
	// The hot half must be intact.
	for i := n / 2; i < n; i++ {
		if n, _ := store.Count(fmt.Sprintf("k-%d", i)); n < 0.5 {
			t.Errorf("hot key k-%d was evicted", i)
		}
	}
	// Disabled watermarks never evict.
	store.SetMemoryWatermarks(0, 0)
	if got := store.EvictToWatermark(); got != 0 {
		t.Errorf("disabled watermark evicted %d keys", got)
	}
}

// TestLifecycleVerbs drives EXPIRE/PEXPIRE/TTL/PERSIST over the wire,
// including the Redis -2/-1 TTL conventions and argument validation.
func TestLifecycleVerbs(t *testing.T) {
	srv, c := startServer(t)
	clk := &fakeClock{}
	clk.ms.Store(1_000_000)
	srv.Store().SetClock(clk.now)

	if _, err := c.PFAdd("k", "a"); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		parts []string
		want  string // reply with the ':' sigil already stripped by Do
	}{
		{[]string{"TTL", "missing"}, "-2"},
		{[]string{"TTL", "k"}, "-1"},
		{[]string{"EXPIRE", "missing", "10"}, "0"},
		{[]string{"EXPIRE", "k", "10"}, "1"},
		{[]string{"TTL", "k"}, "10"},
		{[]string{"PEXPIRE", "k", "2500"}, "1"},
		{[]string{"TTL", "k"}, "3"}, // 2500ms rounds up
		{[]string{"PERSIST", "k"}, "1"},
		{[]string{"PERSIST", "k"}, "0"},
		{[]string{"TTL", "k"}, "-1"},
	} {
		if reply, err := c.Do(tc.parts...); err != nil || reply != tc.want {
			t.Errorf("%v → %q, %v; want %q", tc.parts, reply, err, tc.want)
		}
	}
	for _, bad := range [][]string{
		{"EXPIRE", "k"},
		{"EXPIRE", "k", "0"},
		{"EXPIRE", "k", "-5"},
		{"EXPIRE", "k", "nope"},
		{"EXPIRE", "k", "99999999999999999999"},
		{"PEXPIRE", "k", "0"},
		{"PEXPIRE", "k", "-1"},
		{"TTL"},
		{"PERSIST"},
	} {
		if _, err := c.Do(bad...); err == nil {
			t.Errorf("%v accepted", bad)
		}
	}
	// Expiry over the wire: the key vanishes at its deadline.
	if _, err := c.Do("PEXPIRE", "k", "100"); err != nil {
		t.Fatal(err)
	}
	clk.advance(200 * time.Millisecond)
	if reply, err := c.Do("TTL", "k"); err != nil || reply != "-2" {
		t.Errorf("TTL after deadline = %q, %v; want -2", reply, err)
	}
	if n, err := c.PFCount("k"); err != nil || n != 0 {
		t.Errorf("PFCOUNT after deadline = %v, %v; want 0", n, err)
	}
}

// TestClientLifecycleAPI exercises the typed client wrappers.
func TestClientLifecycleAPI(t *testing.T) {
	_, c := startServer(t)
	if _, err := c.PFAdd("k", "a"); err != nil {
		t.Fatal(err)
	}
	ok, err := c.Expire("k", 90*time.Second)
	if err != nil || !ok {
		t.Fatalf("Expire = %v, %v", ok, err)
	}
	ttl, err := c.TTL("k")
	if err != nil || ttl != 90 {
		t.Fatalf("TTL = %d, %v; want 90", ttl, err)
	}
	if ok, err := c.PExpire("k", 500*time.Millisecond); err != nil || !ok {
		t.Fatalf("PExpire = %v, %v", ok, err)
	}
	if ok, err := c.Persist("k"); err != nil || !ok {
		t.Fatalf("Persist = %v, %v", ok, err)
	}
	if ttl, err := c.TTL("k"); err != nil || ttl != -1 {
		t.Fatalf("TTL after Persist = %d, %v; want -1", ttl, err)
	}
	if ttl, err := c.TTL("missing"); err != nil || ttl != -2 {
		t.Fatalf("TTL of missing key = %d, %v; want -2", ttl, err)
	}
}

// TestSnapshotV4DeadlineRoundTrip: deadlines ride snapshot records;
// records already past their deadline at load time stay dead.
func TestSnapshotV4DeadlineRoundTrip(t *testing.T) {
	store, _ := newClockedStore(t, 1_000_000)
	for _, k := range []string{"keep", "ttl-far", "ttl-near"} {
		if _, err := store.Add(k, "x", "y"); err != nil {
			t.Fatal(err)
		}
	}
	store.ExpireAt("ttl-far", 2_000_000)
	store.ExpireAt("ttl-near", 1_001_000)
	var buf bytes.Buffer
	if err := store.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Bytes()[4] != snapshotVersion {
		t.Fatalf("snapshot wrote version %d, want %d", buf.Bytes()[4], snapshotVersion)
	}
	snap := buf.Bytes()

	restored, clk2 := newClockedStore(t, 1_000_000)
	if err := restored.ReadSnapshot(bytes.NewReader(snap)); err != nil {
		t.Fatal(err)
	}
	if dl, ok := restored.DeadlineOf("ttl-far"); !ok || dl != 2_000_000 {
		t.Errorf("restored deadline = %d, %v; want 2000000, true", dl, ok)
	}
	if dl, ok := restored.DeadlineOf("keep"); !ok || dl != 0 {
		t.Errorf("undeadlined key restored as %d, %v", dl, ok)
	}
	_, _, resident := restored.LifecycleStats()
	if resident <= 0 {
		t.Errorf("resident_bytes not rebuilt on load: %d", resident)
	}
	// Advance past ttl-near and reload the same bytes elsewhere: the
	// expired record is skipped at load.
	clk2.advance(time.Hour)
	if n, _ := restored.Count("ttl-near"); n != 0 {
		t.Error("ttl-near survived its deadline after restore")
	}
	late, _ := newClockedStore(t, 1_500_000)
	if err := late.ReadSnapshot(bytes.NewReader(snap)); err != nil {
		t.Fatal(err)
	}
	if late.Len() != 2 {
		t.Errorf("late load kept %d keys, want 2 (ttl-near expired on disk)", late.Len())
	}
	if _, ok := late.Dump("ttl-near"); ok {
		t.Error("record already past its deadline resurrected at load")
	}
}

// TestSnapshotV3LegacyLoad pins the v3 byte layout (type tags, no
// deadlines) against an independently constructed stream: pre-lifecycle
// snapshots still load, every key immortal.
func TestSnapshotV3LegacyLoad(t *testing.T) {
	orig := newTestStore(t)
	want := make(map[string]float64)
	blobs := make(map[string][]byte)
	for _, k := range []string{"a", "b"} {
		if _, err := orig.Add(k, "x-"+k, "y-"+k); err != nil {
			t.Fatal(err)
		}
		n, _ := orig.Count(k)
		want[k] = n
		blob, ok := orig.Dump(k)
		if !ok {
			t.Fatal("dump failed")
		}
		blobs[k] = blob
	}
	var buf bytes.Buffer
	buf.WriteString("ELSS")
	buf.WriteByte(3)
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) {
		buf.Write(scratch[:binary.PutUvarint(scratch[:], v)])
	}
	writeUvarint(0) // no metadata
	writeUvarint(uint64(len(blobs)))
	for _, k := range []string{"a", "b"} {
		writeUvarint(uint64(len(k)))
		buf.WriteString(k)
		buf.WriteByte('E')
		writeUvarint(uint64(len(blobs[k])))
		buf.Write(blobs[k])
	}
	restored := newTestStore(t)
	if err := restored.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("v3 snapshot rejected: %v", err)
	}
	for k, w := range want {
		if got, _ := restored.Count(k); got != w {
			t.Errorf("v3 load count %s = %v, want %v", k, got, w)
		}
		if dl, ok := restored.DeadlineOf(k); !ok || dl != 0 {
			t.Errorf("v3 key %s restored with deadline %d, %v", k, dl, ok)
		}
	}
}

// FuzzSnapshotV4Decode: arbitrary snapshot bytes must never panic the
// reader, and an accepted stream must re-encode cleanly.
func FuzzSnapshotV4Decode(f *testing.F) {
	seedStore, err := NewStore(core.RecommendedML(8))
	if err != nil {
		f.Fatal(err)
	}
	seedStore.Add("k1", "a", "b")
	seedStore.Add("k2", "c")
	seedStore.ExpireAt("k1", 9_000_000_000_000)
	var seed bytes.Buffer
	if err := seedStore.WriteSnapshot(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("ELSS"))
	f.Add([]byte("ELSS\x04"))
	f.Add([]byte("ELSS\x04\x00\x01"))
	f.Add([]byte("ELSS\x05\x00\x00"))
	f.Add(append([]byte("ELSS\x04\x00"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01))
	if len(seed.Bytes()) > 10 {
		trunc := seed.Bytes()[:len(seed.Bytes())-7]
		f.Add(append([]byte{}, trunc...))
		mut := append([]byte{}, seed.Bytes()...)
		mut[7] ^= 0xff
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		store, err := NewStore(core.RecommendedML(8))
		if err != nil {
			t.Fatal(err)
		}
		if err := store.ReadSnapshot(bytes.NewReader(data)); err != nil {
			return
		}
		var out bytes.Buffer
		if err := store.WriteSnapshot(&out); err != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", err)
		}
		again, _ := NewStore(core.RecommendedML(8))
		if err := again.ReadSnapshot(&out); err != nil {
			t.Fatalf("re-encoded snapshot rejected: %v", err)
		}
	})
}

// FuzzLifecycleVerbFraming mirrors FuzzWindowVerbFraming for the
// lifecycle verbs: arbitrary EXPIRE/PEXPIRE/TTL/PERSIST argument bytes
// must never panic the dispatcher or emit an unframed reply.
func FuzzLifecycleVerbFraming(f *testing.F) {
	f.Add("key 10")
	f.Add("key 0")
	f.Add("key -10")
	f.Add("key 99999999999999999999")
	f.Add("key 1125899906842624")
	f.Add("key nope")
	f.Add("key")
	f.Add("")
	f.Add("key 10 extra")
	f.Add("k \x00 \xff")
	f.Fuzz(func(t *testing.T, args string) {
		store, err := NewStore(core.RecommendedML(8))
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(store)
		var out bytes.Buffer
		cc := &connCtx{s: srv, w: bufio.NewWriterSize(&out, 64*1024)}
		for _, verb := range []string{"EXPIRE ", "PEXPIRE ", "TTL ", "PERSIST "} {
			if quit := cc.exec([]byte(verb + args + "\n")); quit {
				t.Fatalf("%s%q quit the connection", verb, args)
			}
		}
		cc.w.Flush()
		for _, line := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
			if line == "" {
				continue
			}
			switch line[0] {
			case '+', '-', ':', '=':
			default:
				t.Fatalf("unframed reply line %q for args %q", line, args)
			}
		}
		// The store stays consistent: a key created now works.
		if _, err := store.Add("post", "x"); err != nil {
			t.Fatalf("store unusable after fuzzed lifecycle verbs: %v", err)
		}
	})
}
