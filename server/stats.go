package server

// Per-verb serving statistics: atomic counters and fixed-bucket latency
// histograms hooked into the command-registry dispatch, so every verb —
// including the allocation-free PFADD/PFCOUNT/WADD fast paths — is
// measured without a lock or an allocation on the hot path. Each
// registry entry caches a pointer to its verb's stats at registration
// time; dispatch touches only that pointer, a time.Now() pair, and a
// handful of atomic adds.
//
// The numbers surface three ways: the STATS wire verb (one line of k=v
// tokens, see Server docs), CLUSTER STATS on cluster nodes (which adds
// the gossip/rebalance/batcher counters from the cluster package), and
// the Prometheus-text WriteMetrics used by elld's -metrics-addr
// listener.

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// histBuckets is the number of exponential latency buckets. Bucket i
// holds samples whose microsecond value has bit length i — i.e. bucket
// 0 is <1µs, bucket i covers [2^(i-1), 2^i) µs — so bucket selection is
// one bits.Len64 and the top bucket (2^30µs ≈ 18min) is beyond any
// realistic command latency.
const histBuckets = 31

// LatencyHist is a fixed-bucket exponential latency histogram safe for
// concurrent Observe. Buckets are powers of two in microseconds (see
// histBuckets); quantiles are read out as the upper bound of the bucket
// the quantile falls in, clamped to the observed maximum — a ≤2×
// overestimate by construction, which is the usual trade for a
// histogram that costs one atomic add per sample. The zero value is
// ready to use; ell-loader reuses this type for its client-side
// percentiles.
type LatencyHist struct {
	buckets [histBuckets]atomic.Uint64
	sumNS   atomic.Uint64
	maxNS   atomic.Uint64
}

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	i := bits.Len64(us) // 0 for <1µs
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// bucketUpperUS is the inclusive upper bound of bucket i in µs.
func bucketUpperUS(i int) uint64 {
	if i == 0 {
		return 1
	}
	return uint64(1) << uint(i)
}

// Observe records one sample.
func (h *LatencyHist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.sumNS.Add(uint64(d))
	ns := uint64(d)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *LatencyHist) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all recorded samples.
func (h *LatencyHist) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

// Max returns the largest recorded sample.
func (h *LatencyHist) Max() time.Duration { return time.Duration(h.maxNS.Load()) }

// Merge folds other's samples into h (max is kept, buckets and sums
// add). Neither histogram may be concurrently observed during a Merge
// if an exact snapshot is required; counts are never lost either way.
func (h *LatencyHist) Merge(other *LatencyHist) {
	for i := range h.buckets {
		h.buckets[i].Add(other.buckets[i].Load())
	}
	h.sumNS.Add(other.sumNS.Load())
	if m := other.maxNS.Load(); m > h.maxNS.Load() {
		h.maxNS.Store(m)
	}
}

// Quantile returns the q-quantile (0 < q ≤ 1) as the upper bound of the
// bucket the quantile falls in, clamped to the observed maximum; 0 when
// the histogram is empty.
func (h *LatencyHist) Quantile(q float64) time.Duration {
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := range counts {
		cum += counts[i]
		if cum >= rank {
			v := time.Duration(bucketUpperUS(i)) * time.Microsecond
			if max := h.Max(); max > 0 && v > max {
				v = max
			}
			return v
		}
	}
	return h.Max()
}

// reset zeroes the histogram. Concurrent Observes may land before or
// after individual buckets are cleared; the histogram stays internally
// consistent (counts only ever add).
func (h *LatencyHist) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.sumNS.Store(0)
	h.maxNS.Store(0)
}

// VerbStats is the per-verb counter block. All fields are atomics so
// the dispatch hot path records without locking; a reader sees each
// counter individually consistent (not a cross-counter snapshot).
type VerbStats struct {
	calls    atomic.Uint64
	errs     atomic.Uint64
	bytesIn  atomic.Uint64
	bytesOut atomic.Uint64
	hist     LatencyHist
}

// record books one executed command. The histogram is bumped before
// the call counter, so at any quiescent point sum(histogram buckets)
// equals Calls — histograms never lose samples relative to the counter
// (see TestStatsHammer).
func (v *VerbStats) record(in, out int, isErr bool, d time.Duration) {
	v.hist.Observe(d)
	v.bytesIn.Add(uint64(in))
	v.bytesOut.Add(uint64(out))
	if isErr {
		v.errs.Add(1)
	}
	v.calls.Add(1)
}

// Calls returns the number of commands dispatched to this verb.
func (v *VerbStats) Calls() uint64 { return v.calls.Load() }

// Errs returns how many of those commands replied with -ERR.
func (v *VerbStats) Errs() uint64 { return v.errs.Load() }

// Bytes returns the cumulative request and reply bytes.
func (v *VerbStats) Bytes() (in, out uint64) { return v.bytesIn.Load(), v.bytesOut.Load() }

// Hist returns the verb's latency histogram.
func (v *VerbStats) Hist() *LatencyHist { return &v.hist }

func (v *VerbStats) reset() {
	v.calls.Store(0)
	v.errs.Store(0)
	v.bytesIn.Store(0)
	v.bytesOut.Store(0)
	v.hist.reset()
}

// unknownVerb is the bucket unrecognized verbs are accounted under.
const unknownVerb = "UNKNOWN"

// Stats is a server's runtime statistics core. One instance lives in
// every Server; obtain it with Server.Stats. The per-verb blocks are
// created at registration time and cached in the command registry, so
// the verbs map is read-mostly and dispatch never touches it.
type Stats struct {
	mu        sync.Mutex
	verbs     map[string]*VerbStats
	unknown   *VerbStats   // the UNKNOWN block, cached for the dispatch miss path
	startNano atomic.Int64 // wall-clock ns at start or last Reset

	connsCur   atomic.Int64
	connsTotal atomic.Uint64
}

func newStats() *Stats {
	s := &Stats{verbs: make(map[string]*VerbStats)}
	s.startNano.Store(time.Now().UnixNano())
	s.unknown = s.verbFor(unknownVerb)
	return s
}

// verbFor returns the stats block for verb (upper-case), creating it on
// first registration. Re-registering a verb (the cluster package
// overriding PFADD etc.) keeps the existing block, so override and
// builtin traffic accumulate in one place.
func (s *Stats) verbFor(verb string) *VerbStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.verbs[verb]
	if !ok {
		v = &VerbStats{}
		s.verbs[verb] = v
	}
	return v
}

// Verb returns the stats block for verb (case-insensitive), or nil if
// no such verb was ever registered.
func (s *Stats) Verb(verb string) *VerbStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.verbs[strings.ToUpper(verb)]
}

// Uptime returns the time since the server started or Stats were last
// reset.
func (s *Stats) Uptime() time.Duration {
	return time.Duration(time.Now().UnixNano() - s.startNano.Load())
}

// Conns returns the current and cumulative accepted connection counts.
func (s *Stats) Conns() (current int64, total uint64) {
	return s.connsCur.Load(), s.connsTotal.Load()
}

// Reset zeroes every counter and histogram and restarts the uptime
// clock. Commands in flight during the reset may land a sample on
// either side; counters remain monotonic between resets. The current-
// connections gauge is live state, not a counter, and is not reset.
func (s *Stats) Reset() {
	s.mu.Lock()
	blocks := make([]*VerbStats, 0, len(s.verbs))
	for _, v := range s.verbs {
		blocks = append(blocks, v)
	}
	s.mu.Unlock()
	for _, v := range blocks {
		v.reset()
	}
	s.connsTotal.Store(0)
	s.startNano.Store(time.Now().UnixNano())
}

// sortedVerbs returns (verb, stats) pairs sorted by verb name.
func (s *Stats) sortedVerbs() []struct {
	name string
	v    *VerbStats
} {
	s.mu.Lock()
	out := make([]struct {
		name string
		v    *VerbStats
	}, 0, len(s.verbs))
	for name, v := range s.verbs {
		out = append(out, struct {
			name string
			v    *VerbStats
		}{name, v})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Text renders the STATS reply body: a summary row of k=v tokens, then
// one row per verb that has seen traffic, the rows separated by
// newlines. On the wire writeRaw folds the newlines into "; " so the
// whole reply is one line (the protocol's one-reply-one-line rule);
// split on "; " to get the rows back. store may be nil (no keyspace
// gauges then).
func (s *Stats) Text(store *Store) string {
	cur, total := s.Conns()
	var b strings.Builder
	fmt.Fprintf(&b, "uptime_ms=%d conns=%d conns_total=%d",
		s.Uptime().Milliseconds(), cur, total)
	if store != nil {
		hits, misses := store.CacheStats()
		expired, evicted, resident := store.LifecycleStats()
		fmt.Fprintf(&b, " keys=%d shards_used=%d cache_hits=%d cache_misses=%d expired_keys=%d evicted_keys=%d resident_bytes=%d",
			store.Len(), store.ShardsUsed(), hits, misses, expired, evicted, resident)
	}
	for _, e := range s.sortedVerbs() {
		calls := e.v.Calls()
		if calls == 0 {
			continue
		}
		in, out := e.v.Bytes()
		h := e.v.Hist()
		fmt.Fprintf(&b, "\nverb=%s calls=%d errs=%d in=%d out=%d p50us=%d p99us=%d maxus=%d",
			e.name, calls, e.v.Errs(), in, out,
			h.Quantile(0.50).Microseconds(), h.Quantile(0.99).Microseconds(),
			h.Max().Microseconds())
	}
	return b.String()
}

// WriteMetrics renders the statistics in Prometheus text exposition
// format (the elld -metrics-addr /metrics payload). Latency histograms
// come out as native Prometheus histograms (cumulative le buckets in
// seconds, plus _sum and _count). store may be nil.
func (s *Stats) WriteMetrics(w io.Writer, store *Store) {
	cur, total := s.Conns()
	fmt.Fprintf(w, "# TYPE ell_uptime_seconds gauge\nell_uptime_seconds %g\n", s.Uptime().Seconds())
	fmt.Fprintf(w, "# TYPE ell_connections gauge\nell_connections %d\n", cur)
	fmt.Fprintf(w, "# TYPE ell_connections_accepted_total counter\nell_connections_accepted_total %d\n", total)
	if store != nil {
		hits, misses := store.CacheStats()
		expired, evicted, resident := store.LifecycleStats()
		fmt.Fprintf(w, "# TYPE ell_keys gauge\nell_keys %d\n", store.Len())
		fmt.Fprintf(w, "# TYPE ell_shards_used gauge\nell_shards_used %d\n", store.ShardsUsed())
		fmt.Fprintf(w, "# TYPE ell_estimate_cache_hits_total counter\nell_estimate_cache_hits_total %d\n", hits)
		fmt.Fprintf(w, "# TYPE ell_estimate_cache_misses_total counter\nell_estimate_cache_misses_total %d\n", misses)
		fmt.Fprintf(w, "# TYPE ell_expired_keys_total counter\nell_expired_keys_total %d\n", expired)
		fmt.Fprintf(w, "# TYPE ell_evicted_keys_total counter\nell_evicted_keys_total %d\n", evicted)
		fmt.Fprintf(w, "# TYPE ell_resident_bytes gauge\nell_resident_bytes %d\n", resident)
	}
	fmt.Fprint(w, "# TYPE ell_verb_calls_total counter\n")
	fmt.Fprint(w, "# TYPE ell_verb_errors_total counter\n")
	fmt.Fprint(w, "# TYPE ell_verb_bytes_in_total counter\n")
	fmt.Fprint(w, "# TYPE ell_verb_bytes_out_total counter\n")
	fmt.Fprint(w, "# TYPE ell_verb_latency_seconds histogram\n")
	for _, e := range s.sortedVerbs() {
		if e.v.Calls() == 0 {
			continue
		}
		in, out := e.v.Bytes()
		fmt.Fprintf(w, "ell_verb_calls_total{verb=%q} %d\n", e.name, e.v.Calls())
		fmt.Fprintf(w, "ell_verb_errors_total{verb=%q} %d\n", e.name, e.v.Errs())
		fmt.Fprintf(w, "ell_verb_bytes_in_total{verb=%q} %d\n", e.name, in)
		fmt.Fprintf(w, "ell_verb_bytes_out_total{verb=%q} %d\n", e.name, out)
		h := e.v.Hist()
		var cum uint64
		for i := 0; i < histBuckets; i++ {
			n := h.buckets[i].Load()
			if n == 0 && !(i == histBuckets-1) {
				cum += n
				continue
			}
			cum += n
			le := strconv.FormatFloat(float64(bucketUpperUS(i))/1e6, 'g', -1, 64)
			fmt.Fprintf(w, "ell_verb_latency_seconds_bucket{verb=%q,le=%q} %d\n", e.name, le, cum)
		}
		fmt.Fprintf(w, "ell_verb_latency_seconds_bucket{verb=%q,le=\"+Inf\"} %d\n", e.name, cum)
		fmt.Fprintf(w, "ell_verb_latency_seconds_sum{verb=%q} %g\n", e.name, h.Sum().Seconds())
		fmt.Fprintf(w, "ell_verb_latency_seconds_count{verb=%q} %d\n", e.name, cum)
	}
}
