package server

// Keyspace lifecycle: per-key absolute expiry deadlines, lazy + sampled
// background expiry, and memory-watermark eviction of cold keys.
//
// Deadlines are stored as absolute unix-millisecond instants, never as
// durations: replicas holding the same key expire it at the same wall
// instant without gossiping anything, and a deadline survives dump/
// restore, snapshot and rebalance verbatim (the same determinism trick
// the window rings use for their slice edges). Expiry is checked lazily
// on every read/write path — an expired key behaves exactly like a
// missing one — and a background sweeper reclaims keys nobody touches.
//
// Expiry reuses the store's deletion machinery: the entry is marked
// dead and version-bumped under its own lock (so the cached estimate
// and any TaggedBlob handed out before the deadline can never serve
// ghost data), then unlinked from its shard map. The watermark eviction
// pass ranks keys by the per-entry version counter — a write-recency
// signal the store already maintains — and evicts coldest-first until
// resident bytes drop to the low watermark.

import (
	"sort"
	"time"
)

// MaxTTLMillis bounds EXPIRE/PEXPIRE arguments so deadline arithmetic
// can never overflow int64 milliseconds (~35,000 years out);
// MaxDeadlineMillis bounds the absolute deadlines wire and snapshot
// decoders accept. Exported so the cluster layer validates forwarded
// lifecycle verbs against the same bounds the store enforces.
const (
	MaxTTLMillis      = int64(1) << 50
	MaxDeadlineMillis = int64(1) << 53
)

// SetClock replaces the store's time source (default time.Now) — the
// injection point for deterministic expiry tests. Call before serving;
// SetClock is not safe to call concurrently with commands.
func (s *Store) SetClock(now func() time.Time) {
	if now == nil {
		now = time.Now
	}
	s.now = now
}

// NowMillis returns the store clock's current unix-millisecond time —
// the instant EXPIRE deadlines are computed against. Exposed so layers
// above (the cluster package) compute deadlines with the same clock
// they will be judged by.
func (s *Store) NowMillis() int64 { return s.now().UnixMilli() }

// SetDefaultTTL makes every key created from now on expire ttl after
// its creation (0, the default, disables). Explicit EXPIRE/PERSIST
// override it per key. Call before serving.
func (s *Store) SetDefaultTTL(ttl time.Duration) { s.defaultTTL = ttl }

// SetMemoryWatermarks configures eviction: when the approximate
// resident sketch bytes exceed high, EvictToWatermark removes
// cold keys until resident bytes drop to low. high <= 0 disables.
// Call before serving.
func (s *Store) SetMemoryWatermarks(high, low int64) {
	if low > high {
		low = high
	}
	s.hiWater, s.loWater = high, low
}

// LifecycleStats returns the cumulative expired and evicted key counts
// and the current approximate resident sketch bytes — the STATS
// expired_keys/evicted_keys/resident_bytes gauges.
func (s *Store) LifecycleStats() (expired, evicted uint64, residentBytes int64) {
	return s.expiredKeys.Load(), s.evictedKeys.Load(), s.residentBytes.Load()
}

// newEntry builds a live entry holding an empty value of the given
// type, stamped with the store's default TTL and accounted against the
// resident-bytes gauge. Callers link it into a shard map themselves.
func (s *Store) newEntry(tag byte) *entry {
	e := &entry{val: s.newValue(tag)}
	if s.defaultTTL > 0 {
		e.deadline.Store(s.NowMillis() + s.defaultTTL.Milliseconds())
	}
	e.size = e.val.SizeBytes()
	s.residentBytes.Add(int64(e.size))
	return e
}

// killLocked marks e dead and releases its resident-bytes accounting;
// the caller holds e.mu. Idempotent: a second kill is a no-op, so the
// expiry, Delete and replaceAll paths can race without double-counting.
func (s *Store) killLocked(e *entry) {
	if e.dead {
		return
	}
	e.dead = true
	s.residentBytes.Add(-int64(e.size))
	e.size = 0
}

// resizeLocked refreshes e's resident-bytes accounting after a mutation
// that may have changed the value's footprint; the caller holds e.mu.
func (s *Store) resizeLocked(e *entry) {
	if e.dead {
		return
	}
	if n := e.val.SizeBytes(); n != e.size {
		s.residentBytes.Add(int64(n - e.size))
		e.size = n
	}
}

// expireDueLocked expires e if its deadline has passed; the caller
// holds e.mu. The dead mark, the version bump and the estimate-cache
// invalidation happen atomically under that lock, so a concurrent read
// can never serve the pre-expiry cached estimate and a TaggedBlob
// dumped before the deadline can never delete a recreated key. The
// caller must unlink e from its shard map when true is returned.
func (s *Store) expireDueLocked(e *entry) bool {
	if e.dead {
		return false
	}
	dl := e.deadline.Load()
	if dl == 0 || s.NowMillis() < dl {
		return false
	}
	s.killLocked(e)
	e.ver++
	e.estValid = false
	s.expiredKeys.Add(1)
	return true
}

// unlink removes the (key, e) binding from its shard map if still
// present. Comparing identities keeps it safe against a racing
// recreate: a new entry under the same key is never dropped.
func (s *Store) unlink(key string, e *entry) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	if sh.m[key] == e {
		delete(sh.m, key)
	}
	sh.mu.Unlock()
}

// expireIfDue lazily collects e when its deadline passed, reporting
// whether it did. Lock order: e.mu strictly before the shard lock is
// taken (never nested), matching every other store path.
func (s *Store) expireIfDue(key string, e *entry) bool {
	if e.deadline.Load() == 0 {
		return false
	}
	e.mu.Lock()
	due := s.expireDueLocked(e)
	e.mu.Unlock()
	if due {
		s.unlink(key, e)
	}
	return due
}

// ExpireAt sets key's absolute expiry deadline (unix milliseconds); it
// reports whether the key existed. The deadline change bumps the entry
// version: a rebalance tag dumped before the EXPIRE must not delete
// the key out from under its new lifetime.
func (s *Store) ExpireAt(key string, deadlineMillis int64) bool {
	e := s.lookup(key)
	if e == nil {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead {
		return false
	}
	e.deadline.Store(deadlineMillis)
	e.ver++
	return true
}

// Expire sets key's deadline ttl from now (store clock); it reports
// whether the key existed.
func (s *Store) Expire(key string, ttl time.Duration) bool {
	return s.ExpireAt(key, s.NowMillis()+ttl.Milliseconds())
}

// DeadlineOf returns key's absolute deadline in unix milliseconds (0 =
// no deadline); ok is false if the key is missing (or expired — the
// lookup collects it).
func (s *Store) DeadlineOf(key string) (deadlineMillis int64, ok bool) {
	e := s.lookup(key)
	if e == nil {
		return 0, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead {
		return 0, false
	}
	return e.deadline.Load(), true
}

// Persist removes key's deadline; it reports whether a deadline was
// removed (false: missing key or no deadline). Like ExpireAt it bumps
// the version — the lifetime change is observable state.
func (s *Store) Persist(key string) bool {
	e := s.lookup(key)
	if e == nil {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead || e.deadline.Load() == 0 {
		return false
	}
	e.deadline.Store(0)
	e.ver++
	return true
}

// SweepExpired scans up to samplePerShard keys of every shard (map
// iteration order rotates the sample) and collects the expired ones,
// returning how many. samplePerShard <= 0 scans every key. This is the
// background half of expiry — reclaiming keys nobody reads — and it is
// driven by elld's sweep ticker (or directly, with a fake clock, by
// tests).
func (s *Store) SweepExpired(samplePerShard int) (expired int) {
	nowMs := s.NowMillis()
	type victim struct {
		key string
		e   *entry
	}
	for i := range s.shards {
		sh := &s.shards[i]
		var victims []victim
		sh.mu.RLock()
		scanned := 0
		for k, e := range sh.m {
			if samplePerShard > 0 && scanned >= samplePerShard {
				break
			}
			scanned++
			if dl := e.deadline.Load(); dl != 0 && nowMs >= dl {
				victims = append(victims, victim{k, e})
			}
		}
		sh.mu.RUnlock()
		for _, v := range victims {
			if s.expireIfDue(v.key, v.e) {
				expired++
			}
		}
	}
	return expired
}

// EvictToWatermark evicts cold keys when resident sketch bytes exceed
// the high watermark, until they drop to the low watermark, returning
// how many keys were evicted. Coldness is ranked by the per-entry
// version counter — a cheap monotone write-recency signal the store
// already maintains — so keys that stopped changing longest ago go
// first. A key that takes a write between ranking and eviction is
// spared (its version no longer matches).
func (s *Store) EvictToWatermark() (evicted int) {
	if s.hiWater <= 0 || s.residentBytes.Load() <= s.hiWater {
		return 0
	}
	type cand struct {
		key string
		e   *entry
		ver uint64
	}
	var cands []cand
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, e := range sh.m {
			cands = append(cands, cand{key: k, e: e})
		}
		sh.mu.RUnlock()
	}
	for i := range cands {
		cands[i].e.mu.Lock()
		cands[i].ver = cands[i].e.ver
		cands[i].e.mu.Unlock()
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].ver < cands[j].ver })
	for _, c := range cands {
		if s.residentBytes.Load() <= s.loWater {
			break
		}
		if s.evictIfUnchanged(c.key, c.e, c.ver) {
			evicted++
		}
	}
	return evicted
}

// evictIfUnchanged removes (key, e) only if the entry is still exactly
// the ranked state — identity and version both match — mirroring
// DeleteIfUnchanged's compare-and-delete.
func (s *Store) evictIfUnchanged(key string, e *entry, ver uint64) bool {
	sh := s.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.m[key] != e {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead || e.ver != ver {
		return false
	}
	s.killLocked(e)
	s.evictedKeys.Add(1)
	delete(sh.m, key)
	return true
}

// Sweep runs one background lifecycle tick: a sampled expiry scan, then
// a watermark check. The elld sweep ticker calls this.
func (s *Store) Sweep(samplePerShard int) (expired, evicted int) {
	expired = s.SweepExpired(samplePerShard)
	evicted = s.EvictToWatermark()
	return expired, evicted
}
