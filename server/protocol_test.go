package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"exaloglog/internal/core"
)

// rawConn dials the server and returns the raw connection plus a reader,
// bypassing the Client's protocol handling.
func rawConn(t *testing.T, srv *Server) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	return conn, bufio.NewReader(conn)
}

// TestProtocolGarbage feeds malformed input; the server must answer every
// line with an error (or ignore blank lines) and keep the connection
// usable.
func TestProtocolGarbage(t *testing.T) {
	srv, _ := startServer(t)
	conn, r := rawConn(t, srv)
	lines := []string{
		"\x00\x01\x02\xff binary junk",
		"PFADD",            // missing args
		"pfadd someKey v1", // lowercase verb must work
		"   ",              // whitespace only: ignored, no reply
		"PFCOUNT someKey",
	}
	fmt.Fprint(conn, strings.Join(lines, "\n")+"\n")
	want := []string{"-ERR", "-ERR", ":1", ":1"}
	for i, prefix := range want {
		reply, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if !strings.HasPrefix(reply, prefix) {
			t.Fatalf("reply %d = %q, want prefix %q", i, reply, prefix)
		}
	}
}

// TestProtocolPipelining sends many commands in one write; replies must
// come back in order.
func TestProtocolPipelining(t *testing.T) {
	srv, _ := startServer(t)
	conn, r := rawConn(t, srv)
	var b strings.Builder
	const n = 100
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "PFADD pipekey el-%d\n", i)
	}
	b.WriteString("PFCOUNT pipekey\n")
	fmt.Fprint(conn, b.String())
	for i := 0; i < n; i++ {
		reply, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if reply != ":1\n" {
			t.Fatalf("PFADD %d reply %q", i, reply)
		}
	}
	reply, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if reply != fmt.Sprintf(":%d\n", n) {
		t.Fatalf("PFCOUNT reply %q, want :%d", reply, n)
	}
}

// TestProtocolPipelinedBurstMixed sends one large single-write burst
// mixing every fast-path and slow-path verb plus blank and erroneous
// lines, and checks that exactly one reply comes back per non-blank
// command, in order. This pins the coalesced-flush path: the server
// may batch the replies into few writes, but never reorder, drop or
// duplicate one.
func TestProtocolPipelinedBurstMixed(t *testing.T) {
	srv, _ := startServer(t)
	conn, r := rawConn(t, srv)
	var b strings.Builder
	var want []string // reply prefixes, in order
	const rounds = 200
	for i := 0; i < rounds; i++ {
		fmt.Fprintf(&b, "PFADD burst el-%d\n", i)
		want = append(want, ":") // :1 or (rarely, per sketch semantics) :0
		if i%10 == 3 {
			b.WriteString("   \n") // blank: ignored, no reply
		}
		if i%10 == 5 {
			b.WriteString("PFCOUNT burst\n")
			want = append(want, ":")
		}
		if i%10 == 7 {
			// The typed error and PONG anchor positional alignment:
			// a dropped or duplicated reply shifts them onto the
			// wrong prefix.
			b.WriteString("PFADD\n")
			want = append(want, "-ERR")
			b.WriteString("PING\n")
			want = append(want, "+PONG")
		}
	}
	b.WriteString("PFCOUNT burst\nQUIT\n")
	want = append(want, ":", "+BYE")
	if _, err := fmt.Fprint(conn, b.String()); err != nil {
		t.Fatal(err)
	}
	var finalCount string
	for i, prefix := range want {
		reply, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reply %d/%d: %v", i+1, len(want), err)
		}
		if !strings.HasPrefix(reply, prefix) {
			t.Fatalf("reply %d = %q, want prefix %q", i, reply, prefix)
		}
		if i == len(want)-2 {
			finalCount = strings.TrimSpace(reply[1:])
		}
	}
	var n int
	if _, err := fmt.Sscan(finalCount, &n); err != nil || n < rounds*95/100 || n > rounds*105/100 {
		t.Errorf("final PFCOUNT = %q, want ≈%d", finalCount, rounds)
	}
	if extra, err := r.ReadString('\n'); err == nil {
		t.Fatalf("unexpected extra reply %q after QUIT", extra)
	}
}

// TestProtocolHugeLine: a line beyond the scanner's 16 MiB cap must not
// crash the server; the connection may drop but the server stays up.
func TestProtocolHugeLine(t *testing.T) {
	srv, _ := startServer(t)
	conn, _ := rawConn(t, srv)
	huge := strings.Repeat("x", 20<<20)
	fmt.Fprintf(conn, "PFADD key %s\n", huge)
	conn.Close()
	// Server must still accept fresh connections.
	c2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Ping(); err != nil {
		t.Fatalf("server unusable after huge line: %v", err)
	}
}

// TestRestoreCrossConfig: a sketch serialized with a different (t-equal)
// configuration restores fine and PFCOUNT aligns it via reduction.
func TestRestoreCrossConfig(t *testing.T) {
	srv, c := startServer(t)
	_ = srv
	// Build a p=10 sketch (server default is p=12) out-of-band.
	foreign := core.MustNew(core.Config{T: 2, D: 20, P: 10})
	for i := 0; i < 1000; i++ {
		foreign.AddString(fmt.Sprintf("f-%d", i))
	}
	blob, err := foreign.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Restore("foreign", blob); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PFAdd("native", "f-0", "f-1", "extra"); err != nil {
		t.Fatal(err)
	}
	n, err := c.PFCount("foreign", "native")
	if err != nil {
		t.Fatal(err)
	}
	// Union ≈ 1001 (1000 foreign + "extra"), p=10 accuracy ≈ 3.6 %.
	if n < 900 || n > 1100 {
		t.Fatalf("cross-config union = %d, want ≈1001", n)
	}
	// Restoring a sketch with a different t must fail to count together.
	otherT := core.MustNew(core.Config{T: 0, D: 2, P: 10})
	otherT.AddString("x")
	blob2, _ := otherT.MarshalBinary()
	if err := c.Restore("ull", blob2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PFCount("ull", "native"); err == nil {
		t.Error("counting across different t succeeded, want error")
	}
}

// TestCorruptRestorePayloads exercises the deserialization error paths
// end to end over the wire.
func TestCorruptRestorePayloads(t *testing.T) {
	_, c := startServer(t)
	good := core.MustNew(core.RecommendedML(4))
	good.AddString("a")
	blob, _ := good.MarshalBinary()
	for name, corrupt := range map[string][]byte{
		"empty":       {},
		"short":       blob[:4],
		"bad magic":   append([]byte("XX"), blob[2:]...),
		"bad version": append([]byte{'E', 'L', 99}, blob[3:]...),
		"bad params":  append([]byte{'E', 'L', 1, 99, 99, 99}, blob[6:]...),
		"truncated":   blob[:len(blob)-1],
	} {
		if err := c.Restore("corrupt", corrupt); err == nil {
			t.Errorf("RESTORE of %s payload succeeded", name)
		}
	}
}
