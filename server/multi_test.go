package server

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"exaloglog/internal/core"
)

// startFleet brings up n servers and a MultiClient over them.
func startFleet(t *testing.T, n int) *MultiClient {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		store, err := NewStore(core.RecommendedML(12))
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(store)
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr()
	}
	mc, err := DialMulti(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mc.Close() })
	return mc
}

func TestMultiClientSharding(t *testing.T) {
	mc := startFleet(t, 3)
	if mc.NumShards() != 3 {
		t.Fatalf("NumShards = %d", mc.NumShards())
	}
	if err := mc.Ping(); err != nil {
		t.Fatal(err)
	}
	// Many keys land on different shards but every key remains countable.
	for k := 0; k < 30; k++ {
		key := fmt.Sprintf("key-%d", k)
		if _, err := mc.PFAdd(key, "a", "b", "c"); err != nil {
			t.Fatal(err)
		}
		n, err := mc.PFCount(key)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(n-3) > 0.2 {
			t.Errorf("key %s count %g, want 3", key, n)
		}
	}
	keys, err := mc.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 30 {
		t.Errorf("Keys = %d entries, want 30", len(keys))
	}
}

// TestMultiClientCrossShardUnion: the same logical key written on every
// shard directly (simulating regional writers) still unions exactly.
func TestMultiClientCrossShardUnion(t *testing.T) {
	// Build three independent servers and write overlapping element sets
	// to the SAME key on each, bypassing the router.
	addrs := make([]string, 3)
	direct := make([]*Client, 3)
	for i := range addrs {
		store, err := NewStore(core.RecommendedML(12))
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(store)
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr()
		c, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		direct[i] = c
	}
	// Region i sees users [i·5000, i·5000+10000): pairwise overlaps.
	for i, c := range direct {
		batch := make([]string, 0, 500)
		for u := i * 5000; u < i*5000+10000; u++ {
			batch = append(batch, fmt.Sprintf("user-%d", u))
			if len(batch) == 500 {
				if _, err := c.PFAdd("visitors", batch...); err != nil {
					t.Fatal(err)
				}
				batch = batch[:0]
			}
		}
	}
	mc, err := DialMulti(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	got, err := mc.PFCount("visitors")
	if err != nil {
		t.Fatal(err)
	}
	want := 20000.0 // users [0, 20000)
	if rel := math.Abs(got-want) / want; rel > 0.03 {
		t.Errorf("cross-shard union %.0f, want ≈%.0f", got, want)
	}
}

func TestMultiClientMissingKeys(t *testing.T) {
	mc := startFleet(t, 2)
	n, err := mc.PFCount("ghost")
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("missing key count %g", n)
	}
}

func TestErrNoSuchKeySentinel(t *testing.T) {
	_, c := startServer(t)
	_, err := c.Dump("nope")
	if !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("Dump error %v does not wrap ErrNoSuchKey", err)
	}
}

func TestDialMultiValidation(t *testing.T) {
	if _, err := DialMulti(); err == nil {
		t.Error("empty address list accepted")
	}
	if _, err := DialMulti("127.0.0.1:1"); err == nil {
		t.Error("unreachable address accepted")
	}
}
