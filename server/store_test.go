package server

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"exaloglog/internal/core"
)

func newTestStore(t *testing.T) *Store {
	t.Helper()
	store, err := NewStore(core.RecommendedML(12))
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// TestStoreShardedConcurrency hammers the sharded store from many
// goroutines with overlapping key sets — every worker writes both its
// own keys and a shared set, interleaved with counts, merges, deletes
// and tagged dumps — and then checks that every surviving element is
// accounted for. Run under -race this is the store's memory-model
// test; the final count checks that no write was lost to a lock gap
// (e.g. an add racing a delete into an orphaned entry).
func TestStoreShardedConcurrency(t *testing.T) {
	store := newTestStore(t)
	const (
		workers = 16
		perW    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := fmt.Sprintf("own-%d", w)
			for i := 0; i < perW; i++ {
				el := fmt.Sprintf("w%d-e%d", w, i)
				store.Add("shared", el)
				store.Add(own, el)
				switch i % 100 {
				case 10:
					if _, err := store.Count("shared", own); err != nil {
						t.Error(err)
						return
					}
				case 30:
					if err := store.Merge("merged", own); err != nil {
						t.Error(err)
						return
					}
				case 50:
					store.Delete(fmt.Sprintf("scratch-%d", w))
					store.Add(fmt.Sprintf("scratch-%d", w), el)
				case 70:
					for key, tagged := range store.DumpAllTagged() {
						// Only ever try to delete scratch keys; a
						// false return (concurrent write) is fine.
						if len(key) > 7 && key[:7] == "scratch" {
							store.DeleteIfUnchanged(key, tagged)
						}
					}
				case 90:
					store.Keys()
					store.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	// Every worker added its full element set to both "shared" and its
	// own key; none of those keys are ever deleted, so the counts must
	// reflect all workers*perW distinct elements.
	want := float64(workers * perW)
	got, err := store.Count("shared")
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got-want) / want; rel > 0.05 {
		t.Errorf("shared count = %.0f, want ≈%.0f", got, want)
	}
	keys := []string{"shared"}
	for w := 0; w < workers; w++ {
		keys = append(keys, fmt.Sprintf("own-%d", w))
	}
	union, err := store.Count(keys...)
	if err != nil {
		t.Fatal(err)
	}
	if union != got {
		t.Errorf("union over identical content %.0f != %.0f", union, got)
	}
}

// TestStoreAddDeleteRace interleaves adds and deletes of the same key:
// an add must either land before a delete (gone afterwards) or
// recreate the key, never write into an unlinked sketch.
func TestStoreAddDeleteRace(t *testing.T) {
	store := newTestStore(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				if w%2 == 0 {
					store.Add("contested", fmt.Sprintf("w%d-e%d", w, i))
				} else {
					store.Delete("contested")
				}
			}
		}(w)
	}
	wg.Wait()
	// Terminal add must be visible: the key exists and counts.
	store.Add("contested", "final")
	n, err := store.Count("contested")
	if err != nil {
		t.Fatal(err)
	}
	if n < 0.5 {
		t.Errorf("count after terminal add = %f, want ≈1 or more", n)
	}
}

// TestStoreAddBytesMatchesAdd checks the byte-slice fast path produces
// the same sketch state as the string path, and does not retain its
// argument slices.
func TestStoreAddBytesMatchesAdd(t *testing.T) {
	a, b := newTestStore(t), newTestStore(t)
	key := []byte("k")
	el := make([]byte, 0, 16)
	for i := 0; i < 1000; i++ {
		s := fmt.Sprintf("el-%04d", i)
		changed, err := a.Add("k", s)
		if err != nil {
			t.Fatal(err)
		}
		el = append(el[:0], s...)
		if got, err := b.AddBytes(key, [][]byte{el}); err != nil || got != changed {
			t.Fatalf("AddBytes(%q) changed = %v (%v), Add = %v", s, got, err, changed)
		}
		// Scribble over the reused slices; the store must not care.
		for j := range el {
			el[j] = 0xff
		}
	}
	da, _ := a.Dump("k")
	db, _ := b.Dump("k")
	if string(da) != string(db) {
		t.Error("AddBytes produced different sketch state than Add")
	}
	na, _ := a.Count("k")
	nb, err := b.CountBytes([][]byte{[]byte("k")})
	if err != nil {
		t.Fatal(err)
	}
	if na != nb {
		t.Errorf("CountBytes = %.1f, Count = %.1f", nb, na)
	}
}

// TestStoreCountCrossConfig pins the accumulator fallback paths: a
// lone foreign-config key counts on its own, mixes with native keys
// via reduction when t matches, and errors when t differs.
func TestStoreCountCrossConfig(t *testing.T) {
	store := newTestStore(t)
	foreign := core.MustNew(core.Config{T: 2, D: 20, P: 10})
	for i := 0; i < 500; i++ {
		foreign.AddString(fmt.Sprintf("f-%d", i))
	}
	blob, _ := foreign.MarshalBinary()
	if err := store.Restore("foreign", blob); err != nil {
		t.Fatal(err)
	}
	n, err := store.Count("foreign")
	if err != nil {
		t.Fatal(err)
	}
	if n < 400 || n > 600 {
		t.Errorf("foreign-only count = %.0f, want ≈500", n)
	}
	store.Add("native", "f-0", "extra")
	union, err := store.Count("foreign", "native")
	if err != nil {
		t.Fatal(err)
	}
	if union < 400 || union > 620 {
		t.Errorf("cross-config union = %.0f, want ≈501", union)
	}
	otherT := core.MustNew(core.Config{T: 0, D: 2, P: 10})
	otherT.AddString("x")
	blobT, _ := otherT.MarshalBinary()
	if err := store.Restore("ull", blobT); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Count("ull", "native"); err == nil {
		t.Error("counting across different t succeeded, want error")
	}
	// The failed count must not have poisoned the pooled accumulator.
	if n, err := store.Count("native"); err != nil || math.Abs(n-2) > 0.5 {
		t.Errorf("count after failed cross-t count = %f, %v; want ≈2, nil", n, err)
	}
}

// TestStoreMergeFailureLeavesNoDest: a PFMERGE that fails on a
// t-incompatible source must not leave an empty destination key
// behind as a side effect of the attempt.
func TestStoreMergeFailureLeavesNoDest(t *testing.T) {
	store := newTestStore(t)
	otherT := core.MustNew(core.Config{T: 0, D: 2, P: 10})
	otherT.AddString("x")
	blob, _ := otherT.MarshalBinary()
	if err := store.Restore("ull", blob); err != nil {
		t.Fatal(err)
	}
	if err := store.Merge("fresh-dest", "ull"); err == nil {
		t.Fatal("cross-t merge succeeded")
	}
	if _, ok := store.Dump("fresh-dest"); ok {
		t.Error("failed merge created an empty destination key")
	}
	// An existing dest stays unchanged on failure.
	store.Add("existing", "a")
	if err := store.Merge("existing", "ull"); err == nil {
		t.Fatal("cross-t merge into existing dest succeeded")
	}
	if n, err := store.Count("existing"); err != nil || math.Abs(n-1) > 0.5 {
		t.Errorf("existing dest after failed merge: count %f, %v", n, err)
	}
}

// TestStoreMergeConcurrentWithAdds checks the in-place dest fold: a
// write racing Merge is never lost (the old implementation replaced
// dest with a precomputed union, dropping concurrent adds).
func TestStoreMergeConcurrentWithAdds(t *testing.T) {
	store := newTestStore(t)
	for i := 0; i < 1000; i++ {
		store.Add("src", fmt.Sprintf("s-%d", i))
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			store.Add("dest", fmt.Sprintf("d-%d", i))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := store.Merge("dest", "src"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	n, err := store.Count("dest")
	if err != nil {
		t.Fatal(err)
	}
	want := 2000.0
	if rel := math.Abs(n-want) / want; rel > 0.05 {
		t.Errorf("dest count = %.0f, want ≈%.0f (lost writes?)", n, want)
	}
}

// TestDeleteIfUnchangedVersioning pins the tagged-dump contract on the
// sharded store: any mutation after the dump (add, merge-blob,
// restore) must make DeleteIfUnchanged refuse.
func TestDeleteIfUnchangedVersioning(t *testing.T) {
	store := newTestStore(t)
	store.Add("k", "a")
	tagged := store.DumpAllTagged()["k"]

	store.Add("k", "b") // mutates after dump
	if store.DeleteIfUnchanged("k", tagged) {
		t.Fatal("DeleteIfUnchanged deleted a key mutated after the dump")
	}
	tagged = store.DumpAllTagged()["k"]
	if err := store.MergeBlob("k", tagged.Blob); err != nil {
		t.Fatal(err)
	}
	// A same-state merge is a no-op on the registers but still counts
	// as a mutation epoch — refusing is the safe direction.
	if store.DeleteIfUnchanged("k", tagged) {
		t.Fatal("DeleteIfUnchanged deleted a key merged after the dump")
	}
	tagged = store.DumpAllTagged()["k"]
	if !store.DeleteIfUnchanged("k", tagged) {
		t.Fatal("DeleteIfUnchanged refused an unmutated key")
	}
	if _, ok := store.Dump("k"); ok {
		t.Fatal("key still present after DeleteIfUnchanged")
	}
	// Deleting an absent key counts as done.
	if !store.DeleteIfUnchanged("k", tagged) {
		t.Fatal("DeleteIfUnchanged of absent key = false")
	}
}

// TestEstimateCacheInvalidation pins the per-entry cached Estimate: a
// repeated single-key Count is served from the cache, every mutation
// path (Add, Merge, MergeBlob, Restore) invalidates it via the entry
// version counter, and the cached value always equals a reference
// sketch fed the same elements.
func TestEstimateCacheInvalidation(t *testing.T) {
	store := newTestStore(t)
	ref := core.MustNew(store.Config())
	count := func() float64 {
		t.Helper()
		got, err := store.Count("k")
		if err != nil {
			t.Fatal(err)
		}
		return got
	}

	for i := 0; i < 1000; i++ {
		el := fmt.Sprintf("el-%d", i)
		store.Add("k", el)
		ref.AddString(el)
	}
	if got, want := count(), ref.Estimate(); got != want {
		t.Fatalf("count = %v, want %v", got, want)
	}
	// The cache is now primed; white-box check that it holds.
	e := store.lookup("k")
	e.mu.Lock()
	if !e.estValid || e.estVer != e.ver {
		t.Fatalf("cache not primed after Count: valid=%v estVer=%d ver=%d", e.estValid, e.estVer, e.ver)
	}
	cachedVer := e.estVer
	e.mu.Unlock()
	if got, want := count(), ref.Estimate(); got != want {
		t.Fatalf("cached count = %v, want %v", got, want)
	}

	// An add that changes the sketch must invalidate and recompute.
	store.Add("k", "fresh-element")
	ref.AddString("fresh-element")
	if got, want := count(), ref.Estimate(); got != want {
		t.Fatalf("count after add = %v, want %v (stale cache served)", got, want)
	}
	e.mu.Lock()
	if e.estVer == cachedVer {
		t.Fatal("cache version did not advance after a mutating add")
	}
	e.mu.Unlock()

	// An add that does NOT change the sketch keeps the cache valid —
	// and correct, since the estimate cannot have moved.
	store.Add("k", "fresh-element")
	if got, want := count(), ref.Estimate(); got != want {
		t.Fatalf("count after idempotent add = %v, want %v", got, want)
	}

	// Merge, MergeBlob and Restore all route through the version bump.
	store.Add("other", "a", "b", "c")
	if err := store.Merge("k", "k", "other"); err != nil {
		t.Fatal(err)
	}
	ref.AddString("a")
	ref.AddString("b")
	ref.AddString("c")
	if got, want := count(), ref.Estimate(); got != want {
		t.Fatalf("count after Merge = %v, want %v", got, want)
	}
	blob, _ := store.Dump("other")
	if err := store.MergeBlob("k", blob); err != nil {
		t.Fatal(err)
	}
	if got, want := count(), ref.Estimate(); got != want {
		t.Fatalf("count after MergeBlob = %v, want %v", got, want)
	}
	fresh := core.MustNew(store.Config())
	fresh.AddString("only")
	fblob, _ := fresh.MarshalBinary()
	if err := store.Restore("k", fblob); err != nil {
		t.Fatal(err)
	}
	if got, want := count(), fresh.Estimate(); got != want {
		t.Fatalf("count after Restore = %v, want %v", got, want)
	}

	// Deleted key: the cache dies with the entry.
	store.Delete("k")
	if got := count(); got != 0 {
		t.Fatalf("count after delete = %v, want 0", got)
	}
}

// TestSingleKeyCountMatchesUnionPath: the single-key fast path and the
// multi-key accumulator path must agree exactly, including for keys
// with a foreign configuration introduced by Restore.
func TestSingleKeyCountMatchesUnionPath(t *testing.T) {
	store := newTestStore(t)
	for i := 0; i < 500; i++ {
		store.Add("k", fmt.Sprintf("el-%d", i))
	}
	single, err := store.Count("k")
	if err != nil {
		t.Fatal(err)
	}
	viaUnion, err := store.Count("k", "missing")
	if err != nil {
		t.Fatal(err)
	}
	if single != viaUnion {
		t.Fatalf("single-key count %v != union-path count %v", single, viaUnion)
	}

	foreign := core.MustNew(core.Config{T: 2, D: 20, P: 10})
	foreign.AddString("x")
	blob, _ := foreign.MarshalBinary()
	if err := store.Restore("f", blob); err != nil {
		t.Fatal(err)
	}
	got, err := store.Count("f")
	if err != nil {
		t.Fatal(err)
	}
	if want := foreign.Estimate(); got != want {
		t.Fatalf("foreign-config single-key count %v, want %v", got, want)
	}
}
