// Package server provides a small TCP key→sketch service in the style of
// the PFADD / PFCOUNT / PFMERGE commands that Redis offers on top of
// HyperLogLog — the "query languages of many data stores offer special
// commands for approximate distinct counting" motivation of the paper's
// introduction — backed by ExaLogLog sketches. Keys are polymorphic:
// beside plain sketches the store holds sliding-window slice-rings
// (WADD / WCOUNT / WINFO), the paper's port-scan/DDoS workload, behind
// the same sharding, persistence and replication machinery.
//
// The wire protocol is a line-oriented subset of the Redis conventions:
// one command per line, space-separated tokens, and typed single-line
// replies ("+OK", ":123", "-ERR ...", "=<base64>"). See Server for the
// command set.
package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"exaloglog/internal/core"
	"exaloglog/internal/hashing"
	"exaloglog/window"
)

// numShards is the number of independently locked buckets the key space
// is hashed over. A power of two so the shard index is a mask. 128 is
// comfortably above any realistic core count, so two concurrent
// commands on different keys almost never share a shard lock — and even
// when they do, the shard lock only guards the map lookup; the sketch
// mutation itself is serialized per entry.
const numShards = 128

// shardSeed decorrelates the shard hash from the sketches' element
// hash (which uses seed 0).
const shardSeed = 0x5bd1e995a967bd1e

// entry is one key's value plus its own lock, so concurrent commands
// on different keys never contend. The value is polymorphic (see
// SketchValue); everything else here — the version counter, the death
// mark, the estimate cache — is value-type-agnostic machinery. ver
// counts observable state changes (inserts that changed registers,
// merges, restores); together with the entry's identity it lets
// DeleteIfUnchanged detect writes that landed after a dump. dead marks
// an entry that has been unlinked from its shard map: a mutator that
// raced a Delete re-fetches instead of writing into an orphan.
type entry struct {
	mu   sync.Mutex
	val  SketchValue
	ver  uint64
	dead bool

	// size is the value's approximate resident footprint as last
	// accounted against the store's resident-bytes gauge (e.mu held).
	size int

	// deadline is the key's absolute expiry instant in unix
	// milliseconds, 0 meaning none. Atomic so lookup paths can skip the
	// entry lock for the overwhelmingly common no-deadline case; the
	// expiry decision itself happens under e.mu (see expireDueLocked).
	deadline atomic.Int64

	// est caches val.Estimate() as of version estVer, so a hot-key
	// PFCOUNT on an unchanged sketch is O(1) instead of a scan of the
	// dense register array. estValid distinguishes "no cache yet" from
	// a (legitimate) cached value at ver 0.
	est      float64
	estVer   uint64
	estValid bool

	// dig caches the anti-entropy content digest of (key, serialized
	// value) as of version digVer — see digest.go. Like the estimate
	// cache it needs no invalidation hook: a ver mismatch is staleness.
	dig    uint64
	digVer uint64
	digOK  bool
}

// estimateEll returns the entry's current plain-sketch estimate under
// its lock, serving repeated counts of an unchanged sketch from the
// per-entry cache. The cache needs no explicit invalidation hook:
// every mutation path already bumps ver, and a ver mismatch is
// staleness. Hits and misses land in the store's cache counters. ok is
// false for a dead entry; a non-plain value is ErrWrongType.
func (s *Store) estimateEll(e *entry) (v float64, ok bool, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead {
		return 0, false, nil
	}
	if _, isEll := e.val.(*ellValue); !isEll {
		return 0, false, ErrWrongType
	}
	if !e.estValid || e.estVer != e.ver {
		e.est = e.val.Estimate()
		e.estVer = e.ver
		e.estValid = true
		s.cacheMisses.Add(1)
	} else {
		s.cacheHits.Add(1)
	}
	return e.est, true, nil
}

// CacheStats returns how many single-key estimates were served from the
// per-entry estimate cache (hits) versus recomputed (misses).
func (s *Store) CacheStats() (hits, misses uint64) {
	return s.cacheHits.Load(), s.cacheMisses.Load()
}

// ShardsUsed returns how many of the store's hash shards hold at least
// one key — a cheap skew indicator for the STATS reply.
func (s *Store) ShardsUsed() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		if len(sh.m) > 0 {
			n++
		}
		sh.mu.RUnlock()
	}
	return n
}

type shard struct {
	mu sync.RWMutex
	m  map[string]*entry
}

// Store is a named collection of sketch values, safe for concurrent
// use. Keys are hash-sharded over independently locked buckets and each
// value carries its own lock, so PFADDs to different keys proceed in
// parallel. All sketches created through Add share the store's default
// configuration; Restore may introduce sketches with other configurations,
// which still count and merge together as long as they share the
// t-parameter (Section 4.1 of the paper). Windowed values created
// through WindowAdd use the store's window geometry (SetWindowConfig).
type Store struct {
	cfg core.Config

	// winSlice/winSlices is the ring geometry a WindowAdd-created key
	// gets. Set before serving (SetWindowConfig); read-only afterwards.
	winSlice  time.Duration
	winSlices int

	// now is the store's time source — expiry deadlines are judged
	// against it. Defaults to time.Now; SetClock injects a fake clock
	// for deterministic lifecycle tests. Set before serving.
	now func() time.Time

	// defaultTTL, when positive, stamps every created key with a
	// deadline defaultTTL from creation. Set before serving.
	defaultTTL time.Duration

	// hiWater/loWater are the resident-bytes eviction watermarks
	// (SetMemoryWatermarks); hiWater <= 0 disables eviction. Set
	// before serving.
	hiWater, loWater int64

	shards [numShards]shard

	// accs pools union accumulators for Count/Merge so the common
	// all-configs-identical case allocates no sketch per call.
	accs sync.Pool

	metaMu sync.RWMutex
	meta   []byte

	// cacheHits/cacheMisses count single-key estimate lookups served
	// from (or filling) the per-entry estimate cache — the STATS
	// cache_hits/cache_misses gauges.
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64

	// Lifecycle gauges: cumulative lazily/sweeper-expired keys,
	// cumulative watermark-evicted keys, and the approximate resident
	// footprint of all live values (see entry.size).
	expiredKeys   atomic.Uint64
	evictedKeys   atomic.Uint64
	residentBytes atomic.Int64
}

// NewStore returns an empty store whose sketches use configuration cfg.
func NewStore(cfg core.Config) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Store{cfg: cfg, winSlice: defaultWindowSlice, winSlices: defaultWindowSlices, now: time.Now}
	for i := range s.shards {
		s.shards[i].m = make(map[string]*entry)
	}
	s.accs.New = func() any { return core.MustNew(cfg) }
	return s, nil
}

// SetWindowConfig sets the slice duration and slice count a WindowAdd
// uses when it creates a new windowed key (existing keys keep their
// geometry; serialized rings carry their own). The maximum queryable
// window is slice·slices. Call before serving; SetWindowConfig is not
// safe to call concurrently with commands.
func (s *Store) SetWindowConfig(slice time.Duration, slices int) error {
	if _, err := window.New(s.cfg, slice, slices); err != nil {
		return err
	}
	s.winSlice, s.winSlices = slice, slices
	return nil
}

// WindowConfig returns the ring geometry WindowAdd-created keys get.
func (s *Store) WindowConfig() (slice time.Duration, slices int) {
	return s.winSlice, s.winSlices
}

func shardIndex(key string) int {
	return int(hashing.WyString(key, shardSeed) & (numShards - 1))
}

func (s *Store) shardOf(key string) *shard {
	return &s.shards[shardIndex(key)]
}

func (s *Store) shardOfBytes(key []byte) *shard {
	return &s.shards[hashing.Wy64(key, shardSeed)&(numShards-1)]
}

// lookup returns the live entry for key, or nil. An entry whose expiry
// deadline has passed is collected here — every read path goes through
// lookup, so an expired key behaves exactly like a missing one.
func (s *Store) lookup(key string) *entry {
	sh := s.shardOf(key)
	sh.mu.RLock()
	e := sh.m[key]
	sh.mu.RUnlock()
	if e != nil && s.expireIfDue(key, e) {
		return nil
	}
	return e
}

// lookupBytes is lookup with a byte-slice key; the map access compiles
// to a no-allocation string conversion (the key only materializes on
// the rare expiry).
func (s *Store) lookupBytes(key []byte) *entry {
	sh := s.shardOfBytes(key)
	sh.mu.RLock()
	e := sh.m[string(key)]
	sh.mu.RUnlock()
	if e != nil && e.deadline.Load() != 0 && s.expireIfDue(string(key), e) {
		return nil
	}
	return e
}

// newValue constructs an empty value of the given type with the
// store's defaults.
func (s *Store) newValue(tag byte) SketchValue {
	if tag == valueTagWindow {
		c, err := window.New(s.cfg, s.winSlice, s.winSlices)
		if err != nil {
			panic(err) // unreachable: cfg and geometry validated up front
		}
		return &windowValue{c: c}
	}
	return &ellValue{sk: core.MustNew(s.cfg)}
}

// getOrCreate returns the live entry for key, creating it with an
// empty value of the given type when absent. A concurrent creation of
// the same key with another type wins the usual way — first in; the
// loser's command then fails its type check. An expired entry is
// collected and re-created fresh — writing into a key past its
// deadline must behave exactly like writing into a missing one.
func (s *Store) getOrCreate(key string, tag byte) *entry {
	for {
		sh := s.shardOf(key)
		sh.mu.RLock()
		e := sh.m[key]
		sh.mu.RUnlock()
		if e == nil {
			sh.mu.Lock()
			if e = sh.m[key]; e == nil {
				e = s.newEntry(tag)
				sh.m[key] = e
				sh.mu.Unlock()
				return e
			}
			sh.mu.Unlock()
		}
		if s.expireIfDue(key, e) {
			continue
		}
		return e
	}
}

func (s *Store) getOrCreateBytes(key []byte, tag byte) *entry {
	for {
		sh := s.shardOfBytes(key)
		sh.mu.RLock()
		e := sh.m[string(key)]
		sh.mu.RUnlock()
		if e == nil {
			sh.mu.Lock()
			if e = sh.m[string(key)]; e == nil {
				e = s.newEntry(tag)
				sh.m[string(key)] = e
				sh.mu.Unlock()
				return e
			}
			sh.mu.Unlock()
		}
		if e.deadline.Load() != 0 && s.expireIfDue(string(key), e) {
			continue
		}
		return e
	}
}

// getAcc returns an empty accumulator sketch with the store's default
// configuration, reusing a pooled one when available.
func (s *Store) getAcc() *core.Sketch {
	acc := s.accs.Get().(*core.Sketch)
	acc.Reset()
	return acc
}

// Add inserts elements into the sketch at key, creating it if needed.
// It returns true if any insertion changed the sketch state (the Redis
// PFADD convention). A key holding another value type is ErrWrongType.
func (s *Store) Add(key string, elements ...string) (bool, error) {
	for {
		e := s.getOrCreate(key, valueTagEll)
		e.mu.Lock()
		if e.dead {
			e.mu.Unlock()
			continue // deleted between lookup and lock; re-create
		}
		sk, err := e.ellLocked()
		if err != nil {
			e.mu.Unlock()
			return false, fmt.Errorf("server: add %q: %w", key, err)
		}
		before := sk.StateChanges()
		for _, el := range elements {
			sk.AddString(el)
		}
		changed := sk.StateChanges() != before
		if changed {
			e.ver++
		}
		e.mu.Unlock()
		return changed, nil
	}
}

// AddBytes is Add with byte-slice key and elements; it allocates nothing
// once the key exists, which makes it the server's PFADD fast path. The
// slices are not retained.
func (s *Store) AddBytes(key []byte, elements [][]byte) (bool, error) {
	for {
		e := s.getOrCreateBytes(key, valueTagEll)
		e.mu.Lock()
		if e.dead {
			e.mu.Unlock()
			continue
		}
		sk, err := e.ellLocked()
		if err != nil {
			e.mu.Unlock()
			return false, fmt.Errorf("server: add %q: %w", key, err)
		}
		before := sk.StateChanges()
		for _, el := range elements {
			sk.Add(el)
		}
		changed := sk.StateChanges() != before
		if changed {
			e.ver++
		}
		e.mu.Unlock()
		return changed, nil
	}
}

// WindowAdd inserts elements observed at ts into the windowed counter
// at key, creating it (with the store's window geometry) if needed. It
// returns how many of the elements were accepted — the rest were older
// than the ring span and are counted in the ring's Dropped statistic,
// observable through WINFO. A key holding another value type is
// ErrWrongType.
func (s *Store) WindowAdd(key string, ts time.Time, elements ...string) (int, error) {
	for {
		e := s.getOrCreate(key, valueTagWindow)
		e.mu.Lock()
		if e.dead {
			e.mu.Unlock()
			continue
		}
		c, err := e.windowLocked()
		if err != nil {
			e.mu.Unlock()
			return 0, fmt.Errorf("server: window add %q: %w", key, err)
		}
		before := c.Dropped()
		for _, el := range elements {
			c.AddString(ts, el)
		}
		accepted := len(elements) - int(c.Dropped()-before)
		e.ver++
		s.resizeLocked(e)
		e.mu.Unlock()
		return accepted, nil
	}
}

// WindowAddBytes is WindowAdd with byte-slice key and elements and a
// unix-millisecond timestamp — the server's WADD fast path. The slices
// are not retained.
func (s *Store) WindowAddBytes(key []byte, tsMillis int64, elements [][]byte) (int, error) {
	ts := time.UnixMilli(tsMillis)
	for {
		e := s.getOrCreateBytes(key, valueTagWindow)
		e.mu.Lock()
		if e.dead {
			e.mu.Unlock()
			continue
		}
		c, err := e.windowLocked()
		if err != nil {
			e.mu.Unlock()
			return 0, fmt.Errorf("server: window add %q: %w", key, err)
		}
		before := c.Dropped()
		for _, el := range elements {
			c.Add(ts, el)
		}
		accepted := len(elements) - int(c.Dropped()-before)
		e.ver++
		s.resizeLocked(e)
		e.mu.Unlock()
		return accepted, nil
	}
}

// WindowCount estimates the number of distinct elements the windowed
// counter at key observed in (now-win, now]. A zero now means the
// counter's own newest observed timestamp — the deterministic default
// for clockless callers. A missing key counts 0; a key holding another
// value type is ErrWrongType.
func (s *Store) WindowCount(key string, win time.Duration, now time.Time) (float64, error) {
	e := s.lookup(key)
	if e == nil {
		return 0, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead {
		return 0, nil
	}
	c, err := e.windowLocked()
	if err != nil {
		return 0, fmt.Errorf("server: window count %q: %w", key, err)
	}
	if now.IsZero() {
		now = c.Latest()
		if now.IsZero() {
			return 0, nil // nothing observed yet
		}
	}
	return c.Estimate(now, win), nil
}

// WindowInfo describes the windowed counter at key (the WINFO reply
// body, including the Dropped statistic); ok is false if the key is
// missing. A key holding another value type is ErrWrongType.
func (s *Store) WindowInfo(key string) (info string, ok bool, err error) {
	e := s.lookup(key)
	if e == nil {
		return "", false, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead {
		return "", false, nil
	}
	c, err := e.windowLocked()
	if err != nil {
		return "", false, fmt.Errorf("server: window info %q: %w", key, err)
	}
	return c.Describe(), true, nil
}

// mergeInto folds e's plain sketch into *acc under e's lock. When the
// configs match — the overwhelmingly common case — the merge happens in
// place with no allocation. Otherwise the sketch is cloned out and
// aligned via MergeCompatible: if *acc is still the untouched pooled
// accumulator (*found false) the clone simply becomes the accumulator
// (preserving, e.g., counting a lone foreign-t key); else both are
// reduced to common parameters. *pooled tracks whether *acc still is
// the poolable accumulator.
func (s *Store) mergeInto(acc **core.Sketch, pooled, found *bool, e *entry) error {
	e.mu.Lock()
	if e.dead {
		e.mu.Unlock()
		return nil // concurrently deleted: contributes nothing
	}
	sk, err := e.ellLocked()
	if err != nil {
		e.mu.Unlock()
		return err
	}
	if sk.Config() == (*acc).Config() {
		err := (*acc).Merge(sk)
		e.mu.Unlock()
		if err != nil {
			return err // unreachable: identical configs
		}
		*found = true
		return nil
	}
	clone := sk.Clone()
	e.mu.Unlock()
	if !*found {
		if *pooled {
			s.accs.Put(*acc)
			*pooled = false
		}
		*acc = clone
		*found = true
		return nil
	}
	merged, err := core.MergeCompatible(*acc, clone)
	if err != nil {
		return err
	}
	if *pooled {
		s.accs.Put(*acc)
		*pooled = false
	}
	*acc = merged
	return nil
}

// Count estimates the number of distinct elements in the union of the
// sketches at the given keys. Missing keys contribute nothing; a
// windowed key is ErrWrongType (query those with WindowCount). Keys
// with the store's configuration are merged in place into one reusable
// accumulator (no per-key allocation); keys with other configurations
// are aligned via reduction when they share t.
func (s *Store) Count(keys ...string) (float64, error) {
	if len(keys) == 1 {
		// Hot-key fast path: a single-key count needs no union at all,
		// and the per-entry cache makes a repeated count O(1).
		if e := s.lookup(keys[0]); e != nil {
			v, ok, err := s.estimateEll(e)
			if err != nil {
				return 0, fmt.Errorf("server: count %q: %w", keys[0], err)
			}
			if ok {
				return v, nil
			}
		}
		return 0, nil
	}
	acc, pooled, found := s.getAcc(), true, false
	defer func() {
		if pooled {
			s.accs.Put(acc)
		}
	}()
	for _, k := range keys {
		e := s.lookup(k)
		if e == nil {
			continue
		}
		if err := s.mergeInto(&acc, &pooled, &found, e); err != nil {
			return 0, fmt.Errorf("server: count %q: %w", k, err)
		}
	}
	if !found {
		return 0, nil
	}
	return acc.Estimate(), nil
}

// CountBytes is Count with byte-slice keys — the server's PFCOUNT fast
// path. The slices are not retained.
func (s *Store) CountBytes(keys [][]byte) (float64, error) {
	if len(keys) == 1 {
		if e := s.lookupBytes(keys[0]); e != nil {
			v, ok, err := s.estimateEll(e)
			if err != nil {
				return 0, fmt.Errorf("server: count %q: %w", keys[0], err)
			}
			if ok {
				return v, nil
			}
		}
		return 0, nil
	}
	acc, pooled, found := s.getAcc(), true, false
	defer func() {
		if pooled {
			s.accs.Put(acc)
		}
	}()
	for _, k := range keys {
		e := s.lookupBytes(k)
		if e == nil {
			continue
		}
		if err := s.mergeInto(&acc, &pooled, &found, e); err != nil {
			return 0, fmt.Errorf("server: count %q: %w", k, err)
		}
	}
	if !found {
		return 0, nil
	}
	return acc.Estimate(), nil
}

// Merge stores the union of the source keys' sketches at dest (which may
// itself be one of the sources, and is created if absent). The union is
// accumulated without holding dest's lock and then folded into dest in
// place, so a write racing the merge is never lost. Windowed keys —
// sources or dest — are ErrWrongType.
func (s *Store) Merge(dest string, sources ...string) error {
	acc, pooled, found := s.getAcc(), true, false
	defer func() {
		if pooled {
			s.accs.Put(acc)
		}
	}()
	for _, k := range sources {
		e := s.lookup(k)
		if e == nil {
			continue
		}
		if err := s.mergeInto(&acc, &pooled, &found, e); err != nil {
			return fmt.Errorf("server: merge %q: %w", k, err)
		}
	}
	for {
		// When dest would be created, fail an incompatible merge BEFORE
		// getOrCreate so the error cannot leave an empty dest key behind
		// as a side effect. MergeCompatible errors only on t mismatch.
		if s.lookup(dest) == nil && acc.Config().T != s.cfg.T {
			_, err := core.MergeCompatible(core.MustNew(s.cfg), acc)
			return fmt.Errorf("server: merge %q: %w", dest, err)
		}
		e := s.getOrCreate(dest, valueTagEll)
		e.mu.Lock()
		if e.dead {
			e.mu.Unlock()
			continue
		}
		sk, err := e.ellLocked()
		if err != nil {
			e.mu.Unlock()
			return fmt.Errorf("server: merge %q: %w", dest, err)
		}
		if sk.Config() == acc.Config() {
			err = sk.Merge(acc)
		} else {
			var merged *core.Sketch
			if merged, err = core.MergeCompatible(sk, acc); err == nil {
				e.val = &ellValue{sk: merged}
			}
		}
		if err != nil {
			e.mu.Unlock()
			return fmt.Errorf("server: merge %q: %w", dest, err)
		}
		e.ver++
		s.resizeLocked(e)
		e.mu.Unlock()
		return nil
	}
}

// Delete removes key; it reports whether the key existed. A key whose
// deadline already passed counts as missing.
func (s *Store) Delete(key string) bool {
	sh := s.shardOf(key)
	sh.mu.Lock()
	e, ok := sh.m[key]
	if !ok {
		sh.mu.Unlock()
		return false
	}
	e.mu.Lock()
	expired := s.expireDueLocked(e)
	s.killLocked(e)
	e.mu.Unlock()
	delete(sh.m, key)
	sh.mu.Unlock()
	return !expired
}

// Keys returns all live keys in sorted order; keys past their deadline
// but not yet collected are filtered out (the deadline check is
// lock-free, so KEYS stays cheap).
func (s *Store) Keys() []string {
	nowMs := s.NowMillis()
	var keys []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, e := range sh.m {
			if dl := e.deadline.Load(); dl != 0 && nowMs >= dl {
				continue
			}
			keys = append(keys, k)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(keys)
	return keys
}

// Dump serializes the value at key; ok is false if the key is missing.
// Plain sketches keep the raw core format; windowed keys serialize
// slot-wise (see the window package), so a scatter-gather reader can
// merge rings instead of collapsed sketches.
func (s *Store) Dump(key string) (data []byte, ok bool) {
	e := s.lookup(key)
	if e == nil {
		return nil, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead {
		return nil, false
	}
	data, err := e.val.MarshalBinary()
	if err != nil {
		return nil, false // unreachable: value marshaling cannot fail
	}
	return data, true
}

// Restore replaces the value at key with the serialized value data
// (produced by Dump or any exaloglog/window MarshalBinary). The blob's
// own magic selects the value type, so Restore may change a key's type.
func (s *Store) Restore(key string, data []byte) error {
	val, err := decodeValue(data)
	if err != nil {
		return err
	}
	for {
		e := s.getOrCreate(key, val.Tag())
		e.mu.Lock()
		if e.dead {
			e.mu.Unlock()
			continue
		}
		e.val = val
		e.ver++
		s.resizeLocked(e)
		e.mu.Unlock()
		return nil
	}
}

// MergeBlob merges a serialized value into the value at key, creating
// the key if absent. Unlike Restore it never discards existing state,
// which makes it idempotent and safe to re-send — the property cluster
// replication and rebalance rely on (paper Section 1: merging is
// commutative and idempotent). Windowed blobs merge slot-wise. A
// type mismatch against a non-empty existing value is ErrWrongType.
func (s *Store) MergeBlob(key string, data []byte) error {
	return s.MergeBlobDeadline(key, data, 0)
}

// MergeBlobDeadline is MergeBlob for blobs that travel with the source
// key's expiry deadline (unix milliseconds, 0 = none) — rebalance,
// streaming transfer and replication all use it so a moved key keeps
// its lifetime. Deadlines merge monotonically: a fresh (empty) entry
// adopts the incoming deadline verbatim; otherwise the later of the
// two deadlines wins (treating a local "none" as adoptable, so a
// racing plain create cannot strip the TTL a rebalance blob carries),
// and an incoming "none" leaves local state alone — replicas converge
// on the maximum known deadline no matter the merge order, exactly
// like the sketches themselves. A blob whose deadline already passed
// is dropped whole: merging it could only resurrect a ghost.
func (s *Store) MergeBlobDeadline(key string, data []byte, deadlineMillis int64) error {
	in, err := decodeValue(data)
	if err != nil {
		return err
	}
	if deadlineMillis != 0 && deadlineMillis <= s.NowMillis() {
		return nil
	}
	for {
		e := s.getOrCreate(key, in.Tag())
		e.mu.Lock()
		if e.dead {
			e.mu.Unlock()
			continue
		}
		fresh := e.val.empty()
		err := s.mergeValueLocked(e, in)
		if err != nil {
			e.mu.Unlock()
			return fmt.Errorf("server: merge blob into %q: %w", key, err)
		}
		if fresh {
			e.deadline.Store(deadlineMillis)
		} else if deadlineMillis != 0 {
			if dl := e.deadline.Load(); dl == 0 || deadlineMillis > dl {
				e.deadline.Store(deadlineMillis)
			}
		}
		e.ver++
		s.resizeLocked(e)
		e.mu.Unlock()
		return nil
	}
}

// KeyBlob is one (key, serialized value) pair of a bulk absorb — the
// unit the cluster's streaming transfer frames carry — plus the key's
// absolute expiry deadline (0 = none), so moved keys keep their
// lifetime.
type KeyBlob struct {
	Key      string
	Blob     []byte
	Deadline int64
}

// AbsorbBatch merges every pair's blob into its key with MergeBlob's
// idempotent merge-not-replace semantics, reporting how many pairs and
// payload bytes were applied. It stops at the first failing pair (its
// error is returned with the counts so far): pairs arrive framed in
// order, and the streaming sender treats a failed frame as
// all-or-nothing — it re-delivers per key through the fallback path,
// where the failing key surfaces its own error without blocking its
// frame-mates. Re-applying an already-merged prefix is a no-op.
func (s *Store) AbsorbBatch(pairs []KeyBlob) (keys, bytes int, err error) {
	for _, p := range pairs {
		if err := s.MergeBlobDeadline(p.Key, p.Blob, p.Deadline); err != nil {
			return keys, bytes, err
		}
		keys++
		bytes += len(p.Blob)
	}
	return keys, bytes, nil
}

// mergeValueLocked folds the decoded value in into e's value; e.mu held.
func (s *Store) mergeValueLocked(e *entry, in SketchValue) error {
	if e.val.empty() {
		// Freshly created (or still empty) entry: adopt the incoming
		// value wholesale — its type, configuration and geometry — as a
		// missing-key MergeBlob always has.
		e.val = in
		return nil
	}
	switch inv := in.(type) {
	case *ellValue:
		cur, err := e.ellLocked()
		if err != nil {
			return err
		}
		if cur.Config() == inv.sk.Config() {
			return cur.Merge(inv.sk)
		}
		merged, err := core.MergeCompatible(cur, inv.sk)
		if err != nil {
			return err
		}
		e.val = &ellValue{sk: merged}
		return nil
	case *windowValue:
		cur, err := e.windowLocked()
		if err != nil {
			return err
		}
		return cur.Merge(inv.c)
	default:
		return fmt.Errorf("unknown value type %T", in)
	}
}

// DumpAll serializes every value in the store, keyed by name. Each
// blob is a consistent snapshot of its value; the set of keys is
// gathered shard by shard, so keys created or deleted mid-call may or
// may not appear.
func (s *Store) DumpAll() map[string][]byte {
	tagged := s.DumpAllTagged()
	out := make(map[string][]byte, len(tagged))
	for k, t := range tagged {
		out[k] = t.Blob
	}
	return out
}

// TaggedBlob is a serialized value plus an opaque token identifying
// the exact state that was dumped; DeleteIfUnchanged uses the token to
// delete a key only if nothing mutated it after the dump. Type carries
// the value's type tag (snapshot v3+ uses it); Deadline the key's
// absolute expiry instant at dump time (snapshot v4 and the cluster
// transfer paths carry it so a moved key keeps its lifetime).
type TaggedBlob struct {
	Blob     []byte
	Type     byte
	Deadline int64
	e        *entry // identity: Restore swaps entries only via death+recreate
	ver      uint64 // entry version at dump time: every mutation bumps it
}

// DumpAllTagged is DumpAll plus a state token per key, for callers that
// hand blobs off and must not drop a write that lands mid-handoff (the
// cluster rebalance drain).
func (s *Store) DumpAllTagged() map[string]TaggedBlob {
	type namedEntry struct {
		key string
		e   *entry
	}
	var entries []namedEntry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, e := range sh.m {
			entries = append(entries, namedEntry{k, e})
		}
		sh.mu.RUnlock()
	}
	out := make(map[string]TaggedBlob, len(entries))
	for _, ne := range entries {
		ne.e.mu.Lock()
		if ne.e.dead {
			ne.e.mu.Unlock()
			continue
		}
		if s.expireDueLocked(ne.e) {
			// Past its deadline: an expired key must never be dumped,
			// snapshotted or handed to a rebalance — that would
			// resurrect it elsewhere.
			ne.e.mu.Unlock()
			s.unlink(ne.key, ne.e)
			continue
		}
		blob, err := ne.e.val.MarshalBinary()
		tag := ne.e.val.Tag()
		ver := ne.e.ver
		dl := ne.e.deadline.Load()
		ne.e.mu.Unlock()
		if err != nil {
			continue // unreachable: value marshaling cannot fail
		}
		out[ne.key] = TaggedBlob{Blob: blob, Type: tag, Deadline: dl, e: ne.e, ver: ver}
	}
	return out
}

// DeleteIfUnchanged removes key only if its value is still exactly the
// state t captured — no insertion, merge or restore landed since. It
// reports whether the key is gone (a key already absent counts). A
// false return means new data arrived after the dump; the caller must
// re-dump and hand the key off again before dropping it.
func (s *Store) DeleteIfUnchanged(key string, t TaggedBlob) bool {
	sh := s.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.m[key]
	if !ok {
		return true
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e != t.e || e.ver != t.ver {
		// Also covers the expiry race: lazy expiry bumps the version
		// before the key can be recreated, so a tag dumped before the
		// deadline never deletes the successor key.
		return false
	}
	s.killLocked(e)
	delete(sh.m, key)
	return true
}

// Config returns the store's default sketch configuration.
func (s *Store) Config() core.Config { return s.cfg }

// SetMeta attaches an opaque metadata blob to the store. It is
// persisted alongside the sketches by WriteSnapshot and restored by
// ReadSnapshot, so a layer above the store (e.g. the cluster package,
// which keeps its membership map here) survives restarts. nil clears
// it. The blob is copied.
func (s *Store) SetMeta(b []byte) {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	if b == nil {
		s.meta = nil
		return
	}
	s.meta = append([]byte(nil), b...)
}

// Meta returns a copy of the store's metadata blob (nil if unset).
func (s *Store) Meta() []byte {
	s.metaMu.RLock()
	defer s.metaMu.RUnlock()
	if s.meta == nil {
		return nil
	}
	return append([]byte(nil), s.meta...)
}

// Info describes the value at key; ok is false if the key is missing.
// The rendering is value-typed: plain sketches report their
// configuration and estimate, windowed keys their ring geometry,
// Dropped statistic and full-span estimate.
func (s *Store) Info(key string) (info string, ok bool) {
	e := s.lookup(key)
	if e == nil {
		return "", false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead {
		return "", false
	}
	return e.val.Info(), true
}

// Len returns the number of keys.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}
