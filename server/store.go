// Package server provides a small TCP key→sketch service in the style of
// the PFADD / PFCOUNT / PFMERGE commands that Redis offers on top of
// HyperLogLog — the "query languages of many data stores offer special
// commands for approximate distinct counting" motivation of the paper's
// introduction — backed by ExaLogLog sketches.
//
// The wire protocol is a line-oriented subset of the Redis conventions:
// one command per line, space-separated tokens, and typed single-line
// replies ("+OK", ":123", "-ERR ...", "=<base64>"). See Server for the
// command set.
package server

import (
	"fmt"
	"sort"
	"sync"

	"exaloglog/internal/core"
)

// Store is a named collection of ExaLogLog sketches, safe for concurrent
// use. All sketches created through Add share the store's default
// configuration; Restore may introduce sketches with other configurations,
// which still count and merge together as long as they share the
// t-parameter (Section 4.1 of the paper).
type Store struct {
	cfg core.Config

	mu       sync.RWMutex
	sketches map[string]*core.Sketch
	meta     []byte
}

// NewStore returns an empty store whose sketches use configuration cfg.
func NewStore(cfg core.Config) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Store{cfg: cfg, sketches: make(map[string]*core.Sketch)}, nil
}

// Add inserts elements into the sketch at key, creating it if needed.
// It returns true if any insertion changed the sketch state (the Redis
// PFADD convention).
func (s *Store) Add(key string, elements ...string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	sk, ok := s.sketches[key]
	if !ok {
		sk = core.MustNew(s.cfg)
		s.sketches[key] = sk
	}
	before := sk.StateChanges()
	for _, e := range elements {
		sk.AddString(e)
	}
	return sk.StateChanges() != before
}

// Count estimates the number of distinct elements in the union of the
// sketches at the given keys. Missing keys contribute nothing. Keys with
// different configurations are aligned with MergeCompatible when they
// share t.
func (s *Store) Count(keys ...string) (float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var acc *core.Sketch
	for _, k := range keys {
		sk, ok := s.sketches[k]
		if !ok {
			continue
		}
		if acc == nil {
			acc = sk.Clone()
			continue
		}
		merged, err := core.MergeCompatible(acc, sk)
		if err != nil {
			return 0, fmt.Errorf("server: count %q: %w", k, err)
		}
		acc = merged
	}
	if acc == nil {
		return 0, nil
	}
	return acc.Estimate(), nil
}

// Merge stores the union of the source keys' sketches at dest (which may
// itself be one of the sources, and is created if absent).
func (s *Store) Merge(dest string, sources ...string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	acc := core.MustNew(s.cfg)
	if d, ok := s.sketches[dest]; ok {
		acc = d.Clone()
	}
	for _, k := range sources {
		sk, ok := s.sketches[k]
		if !ok {
			continue
		}
		merged, err := core.MergeCompatible(acc, sk)
		if err != nil {
			return fmt.Errorf("server: merge %q: %w", k, err)
		}
		acc = merged
	}
	s.sketches[dest] = acc
	return nil
}

// Delete removes key; it reports whether the key existed.
func (s *Store) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.sketches[key]
	delete(s.sketches, key)
	return ok
}

// Keys returns all keys in sorted order.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.sketches))
	for k := range s.sketches {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Dump serializes the sketch at key; ok is false if the key is missing.
func (s *Store) Dump(key string) (data []byte, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sk, ok := s.sketches[key]
	if !ok {
		return nil, false
	}
	data, err := sk.MarshalBinary()
	if err != nil {
		return nil, false // unreachable: MarshalBinary cannot fail
	}
	return data, true
}

// Restore replaces the sketch at key with the serialized sketch data
// (produced by Dump or any exaloglog MarshalBinary).
func (s *Store) Restore(key string, data []byte) error {
	sk, err := core.FromBinary(data)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sketches[key] = sk
	return nil
}

// MergeBlob merges a serialized sketch into the sketch at key, creating
// the key if absent. Unlike Restore it never discards existing state,
// which makes it idempotent and safe to re-send — the property cluster
// replication and rebalance rely on (paper Section 1: merging is
// commutative and idempotent).
func (s *Store) MergeBlob(key string, data []byte) error {
	in, err := core.FromBinary(data)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.sketches[key]
	if !ok {
		s.sketches[key] = in
		return nil
	}
	merged, err := core.MergeCompatible(cur, in)
	if err != nil {
		return fmt.Errorf("server: merge blob into %q: %w", key, err)
	}
	s.sketches[key] = merged
	return nil
}

// DumpAll serializes every sketch in the store, keyed by name. It is a
// point-in-time copy; mutating the store afterwards does not affect the
// returned blobs.
func (s *Store) DumpAll() map[string][]byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string][]byte, len(s.sketches))
	for k, sk := range s.sketches {
		blob, err := sk.MarshalBinary()
		if err != nil {
			continue // unreachable: MarshalBinary cannot fail
		}
		out[k] = blob
	}
	return out
}

// TaggedBlob is a serialized sketch plus an opaque token identifying
// the exact state that was dumped; DeleteIfUnchanged uses the token to
// delete a key only if nothing mutated it after the dump.
type TaggedBlob struct {
	Blob []byte
	sk   *core.Sketch // identity: MergeBlob/Restore swap the object
	tick uint64       // StateChanges at dump time: Add mutates in place
}

// DumpAllTagged is DumpAll plus a state token per key, for callers that
// hand blobs off and must not drop a write that lands mid-handoff (the
// cluster rebalance drain).
func (s *Store) DumpAllTagged() map[string]TaggedBlob {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]TaggedBlob, len(s.sketches))
	for k, sk := range s.sketches {
		blob, err := sk.MarshalBinary()
		if err != nil {
			continue // unreachable: MarshalBinary cannot fail
		}
		out[k] = TaggedBlob{Blob: blob, sk: sk, tick: sk.StateChanges()}
	}
	return out
}

// DeleteIfUnchanged removes key only if its sketch is still exactly the
// state t captured — no insertion, merge or restore landed since. It
// reports whether the key is gone (a key already absent counts). A
// false return means new data arrived after the dump; the caller must
// re-dump and hand the key off again before dropping it.
func (s *Store) DeleteIfUnchanged(key string, t TaggedBlob) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.sketches[key]
	if !ok {
		return true
	}
	if cur != t.sk || cur.StateChanges() != t.tick {
		return false
	}
	delete(s.sketches, key)
	return true
}

// Config returns the store's default sketch configuration.
func (s *Store) Config() core.Config { return s.cfg }

// SetMeta attaches an opaque metadata blob to the store. It is
// persisted alongside the sketches by WriteSnapshot and restored by
// ReadSnapshot, so a layer above the store (e.g. the cluster package,
// which keeps its membership map here) survives restarts. nil clears
// it. The blob is copied.
func (s *Store) SetMeta(b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b == nil {
		s.meta = nil
		return
	}
	s.meta = append([]byte(nil), b...)
}

// Meta returns a copy of the store's metadata blob (nil if unset).
func (s *Store) Meta() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.meta == nil {
		return nil
	}
	return append([]byte(nil), s.meta...)
}

// Info describes the sketch at key; ok is false if the key is missing.
func (s *Store) Info(key string) (info string, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sk, ok := s.sketches[key]
	if !ok {
		return "", false
	}
	cfg := sk.Config()
	return fmt.Sprintf("t=%d d=%d p=%d bytes=%d estimate=%.1f",
		cfg.T, cfg.D, cfg.P, sk.SizeBytes(), sk.Estimate()), true
}

// Len returns the number of keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sketches)
}
