package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"

	"exaloglog/internal/core"
)

// TestStatsReplyIsOneWireLine: the STATS body is multi-row (summary +
// one row per verb, newline-joined), so it is exactly the kind of reply
// writeRaw's newline folding exists for. Pipelining STATS and PING in
// one write pins the regression: if a newline leaked to the wire, the
// PING reply would land in the middle of the stats rows and every later
// reply on the connection would be off by one.
func TestStatsReplyIsOneWireLine(t *testing.T) {
	srv, c := startServer(t)
	// Traffic on several verbs makes the body genuinely multi-row.
	if _, err := c.PFAdd("sk", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PFCount("sk"); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "STATS\nPING\n"); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	stats, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	stats = strings.TrimSuffix(stats, "\n")
	if !strings.HasPrefix(stats, "+uptime_ms=") {
		t.Fatalf("STATS reply %q does not start with the summary row", stats)
	}
	if strings.Contains(stats, "\r") {
		t.Errorf("STATS reply %q carries an unfolded carriage return", stats)
	}
	// The rows survived the fold: split on "; " to get them back.
	if !strings.Contains(stats, "; verb=PFADD ") || !strings.Contains(stats, "; verb=PFCOUNT") {
		t.Errorf("folded STATS reply %q lacks the per-verb rows", stats)
	}
	ping, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if ping != "+PONG\n" {
		t.Errorf("reply after STATS = %q, want +PONG — STATS leaked extra wire lines", ping)
	}
}

// TestStatsCountersAndReset pins the accounting semantics: exact call
// counts for serial traffic, -ERR replies counted as errors (including
// the unknown-verb bucket), bytes flowing both ways, histogram count
// matching the call counter at quiescence, and STATS RESET zeroing it
// all while the live connection gauge survives.
func TestStatsCountersAndReset(t *testing.T) {
	srv, c := startServer(t)
	const k = 10
	for i := 0; i < k; i++ {
		if _, err := c.PFAdd("key", fmt.Sprintf("el-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Do("PFCOUNT"); err == nil {
		t.Fatal("arity error did not surface")
	}
	if _, err := c.Do("BOGUS"); err == nil {
		t.Fatal("unknown verb did not surface as an error")
	}

	v := srv.Stats().Verb("PFADD")
	if v == nil {
		t.Fatal("no PFADD stats block")
	}
	if got := v.Calls(); got != k {
		t.Errorf("PFADD calls = %d, want %d", got, k)
	}
	if got := v.Hist().Count(); got != v.Calls() {
		t.Errorf("PFADD histogram holds %d samples for %d calls", got, v.Calls())
	}
	if in, out := v.Bytes(); in == 0 || out == 0 {
		t.Errorf("PFADD bytes in=%d out=%d, want both > 0", in, out)
	}
	if errs := v.Errs(); errs != 0 {
		t.Errorf("PFADD errs = %d, want 0", errs)
	}
	if pc := srv.Stats().Verb("PFCOUNT"); pc.Calls() != 1 || pc.Errs() != 1 {
		t.Errorf("PFCOUNT after arity failure: calls=%d errs=%d, want 1/1", pc.Calls(), pc.Errs())
	}
	if u := srv.Stats().Verb(unknownVerb); u.Calls() != 1 || u.Errs() != 1 {
		t.Errorf("unknown-verb bucket: calls=%d errs=%d, want 1/1", u.Calls(), u.Errs())
	}
	if cur, total := srv.Stats().Conns(); cur < 1 || total < 1 {
		t.Errorf("connection gauges cur=%d total=%d, want both ≥ 1", cur, total)
	}

	if reply, err := c.Do("STATS", "RESET"); err != nil || reply != "OK" {
		t.Fatalf("STATS RESET = %q, %v", reply, err)
	}
	if got := v.Calls(); got != 0 {
		t.Errorf("PFADD calls = %d after reset, want 0", got)
	}
	if got := v.Hist().Count(); got != 0 {
		t.Errorf("PFADD histogram holds %d samples after reset, want 0", got)
	}
	if cur, _ := srv.Stats().Conns(); cur < 1 {
		t.Error("reset cleared the live connection gauge")
	}
}

// TestStatsHammer is the race-mode stress for the stats core: workers
// hammer the three fast-path verbs over pipelined connections while one
// observer concurrently polls STATS and intermittently resets. Between
// the observer's own (serialized) resets every counter must be
// monotonic; once traffic quiesces, a final reset plus a known serial
// batch pins the "histograms never lose samples" invariant exactly.
func TestStatsHammer(t *testing.T) {
	srv, _ := startServer(t)
	const workers = 4
	const iters = 250
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			p := c.Pipeline()
			pending := 0
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("hk-%d", i%13)
				el := fmt.Sprintf("el-%d-%d", w, i)
				p.PFAdd(key, el)
				p.PFCount(key)
				p.WAdd("w"+key, 1_750_000_000_000+int64(i), el)
				pending += 3
				if pending >= 48 {
					if _, err := p.Exec(); err != nil {
						t.Error(err)
						return
					}
					pending = 0
				}
			}
			if pending > 0 {
				if _, err := p.Exec(); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}

	stop := make(chan struct{})
	obsDone := make(chan struct{})
	go func() {
		defer close(obsDone)
		c, err := Dial(srv.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		verbs := []string{"PFADD", "PFCOUNT", "WADD"}
		prev := make(map[string]uint64, len(verbs))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// The wire poll runs concurrently with the worker traffic —
			// the actual race under test.
			if _, err := c.Do("STATS"); err != nil {
				t.Error(err)
				return
			}
			for _, verb := range verbs {
				v := srv.Stats().Verb(verb)
				if v == nil {
					continue // verb not dispatched yet
				}
				if calls := v.Calls(); calls < prev[verb] {
					t.Errorf("%s calls went backwards between resets: %d → %d", verb, prev[verb], calls)
					return
				} else {
					prev[verb] = calls
				}
			}
			if i%7 == 6 {
				if _, err := c.Do("STATS", "RESET"); err != nil {
					t.Error(err)
					return
				}
				clear(prev)
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-obsDone
	if t.Failed() {
		return
	}

	// Quiescent phase: no traffic in flight, so after this reset the
	// histogram and call counter of each verb must agree exactly.
	srv.Stats().Reset()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p := c.Pipeline()
	const k = 32
	for i := 0; i < k; i++ {
		el := fmt.Sprintf("q-%d", i)
		p.PFAdd("qk", el)
		p.PFCount("qk")
		p.WAdd("wqk", 1_750_000_000_000+int64(i), el)
	}
	if _, err := p.Exec(); err != nil {
		t.Fatal(err)
	}
	for _, verb := range []string{"PFADD", "PFCOUNT", "WADD"} {
		v := srv.Stats().Verb(verb)
		if got := v.Calls(); got != k {
			t.Errorf("%s calls = %d after quiescent batch, want %d", verb, got, k)
		}
		if got := v.Hist().Count(); got != v.Calls() {
			t.Errorf("%s histogram holds %d samples for %d calls — samples lost", verb, got, v.Calls())
		}
		if errs := v.Errs(); errs != 0 {
			t.Errorf("%s errs = %d, want 0", verb, errs)
		}
	}
}

// TestDispatchPFAddFastPathZeroAlloc guards the acceptance bar for the
// instrumentation: recording per-verb stats on the PFADD fast path must
// not cost an allocation — the stats pointer is cached in the registry
// entry and recording is a time.Now() pair plus atomic adds.
func TestDispatchPFAddFastPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is not meaningful under the race detector")
	}
	store, err := NewStore(core.RecommendedML(12))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	cc := &connCtx{s: srv, w: bufio.NewWriterSize(io.Discard, 64*1024)}
	cc.exec([]byte("PFADD key el-warm\n")) // create the key and the scratch buffers
	lines := make([][]byte, 64)
	for i := range lines {
		lines[i] = []byte(fmt.Sprintf("PFADD key el-%d\n", i))
	}
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		cc.exec(lines[i%len(lines)])
		i++
	})
	if avg != 0 {
		t.Errorf("instrumented PFADD dispatch allocates %.2f per op, want 0", avg)
	}
	// The zero-alloc path was really measured, not skipped.
	if calls := srv.Stats().Verb("PFADD").Calls(); calls == 0 {
		t.Error("stats recorded no PFADD calls — instrumentation not on the fast path")
	}
}

// TestStatsQuantileBounds pins the histogram's read-out contract: the
// reported quantile is the upper bound of the sample's bucket, clamped
// to the observed maximum — at most a 2× overestimate, never an
// underestimate of the true quantile's bucket lower bound.
func TestStatsQuantileBounds(t *testing.T) {
	var h LatencyHist
	for i := 0; i < 99; i++ {
		h.Observe(100 * 1000) // 100µs → bucket (64µs, 128µs]
	}
	h.Observe(5 * 1000 * 1000) // one 5ms outlier
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	p50 := h.Quantile(0.50)
	if us := p50.Microseconds(); us < 100 || us > 128 {
		t.Errorf("p50 = %dµs, want within (100, 128] for 100µs samples", us)
	}
	// The max clamp: p99.9 falls in the outlier's bucket, whose upper
	// bound (8192µs) exceeds the observed max — the max must win.
	if got, want := h.Quantile(0.999), h.Max(); got != want {
		t.Errorf("p99.9 = %v, want clamped to the observed max %v", got, want)
	}
	var empty LatencyHist
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}
