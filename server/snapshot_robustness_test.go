package server

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"exaloglog/internal/core"
)

// snapshotBytes serializes a small store to a byte slice.
func snapshotBytes(t *testing.T) []byte {
	t.Helper()
	store, err := NewStore(core.RecommendedML(10))
	if err != nil {
		t.Fatal(err)
	}
	store.Add("alpha", "a", "b", "c")
	store.Add("beta", "d", "e")
	var buf bytes.Buffer
	if err := store.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadSnapshotCorruption: truncated and corrupted snapshots must
// return clean errors and leave the store untouched — never panic.
func TestReadSnapshotCorruption(t *testing.T) {
	good := snapshotBytes(t)
	cases := map[string][]byte{
		"empty":            {},
		"truncated header": good[:3],
		"bad magic":        append([]byte("NOPE"), good[4:]...),
		"bad version":      append([]byte("ELSS\x09"), good[5:]...),
		"truncated count":  good[:5],
		"truncated record": good[:len(good)/2],
		"truncated tail":   good[:len(good)-1],
		"garbage blobs":    append(append([]byte{}, good[:8]...), bytes.Repeat([]byte{0xff}, 64)...),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			store, err := NewStore(core.RecommendedML(10))
			if err != nil {
				t.Fatal(err)
			}
			store.Add("keep", "x")
			if err := store.ReadSnapshot(bytes.NewReader(data)); err == nil {
				t.Fatal("ReadSnapshot succeeded on corrupt input")
			}
			// On error the store must be unchanged.
			if store.Len() != 1 {
				t.Errorf("store has %d keys after failed load, want 1", store.Len())
			}
			if _, ok := store.Dump("keep"); !ok {
				t.Error("existing key lost after failed load")
			}
		})
	}
}

// TestReadSnapshotHugeCount: a header claiming an absurd record count is
// rejected before any allocation.
func TestReadSnapshotHugeCount(t *testing.T) {
	data := []byte("ELSS\x01\xff\xff\xff\xff\xff\xff\xff\xff\x7f") // count = maxuint64/2
	store, err := NewStore(core.RecommendedML(10))
	if err != nil {
		t.Fatal(err)
	}
	err = store.ReadSnapshot(bytes.NewReader(data))
	if err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("ReadSnapshot = %v, want record-limit error", err)
	}
}

// TestLoadFileTruncated: a truncated snapshot file on disk fails cleanly.
func TestLoadFileTruncated(t *testing.T) {
	store, err := NewStore(core.RecommendedML(10))
	if err != nil {
		t.Fatal(err)
	}
	store.Add("k", "a", "b")
	path := filepath.Join(t.TempDir(), "snap.elss")
	if err := store.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewStore(core.RecommendedML(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadFile(path); err == nil {
		t.Fatal("LoadFile succeeded on truncated file")
	}
	if fresh.Len() != 0 {
		t.Errorf("store has %d keys after failed load, want 0", fresh.Len())
	}
}

// TestRestoreConfigMismatch: RESTORE accepts a sketch with a different
// configuration (documented behavior), and counting it together with a
// t-incompatible default sketch returns a clean error, not a panic.
func TestRestoreConfigMismatch(t *testing.T) {
	store, err := NewStore(core.RecommendedML(10)) // t=2
	if err != nil {
		t.Fatal(err)
	}
	store.Add("native", "a", "b")

	other := core.MustNew(core.Config{T: 1, D: 9, P: 8}) // t=1: merge-incompatible
	other.AddString("x")
	blob, err := other.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Restore("foreign", blob); err != nil {
		t.Fatalf("Restore of valid foreign-config blob: %v", err)
	}

	// Counting the foreign key alone works…
	if _, err := store.Count("foreign"); err != nil {
		t.Fatalf("Count(foreign): %v", err)
	}
	// …but unioning t=1 with t=2 must error cleanly.
	if _, err := store.Count("native", "foreign"); err == nil {
		t.Fatal("Count across t-incompatible sketches succeeded, want error")
	}
	// Same for Merge and MergeBlob.
	if err := store.Merge("dest", "native", "foreign"); err == nil {
		t.Fatal("Merge across t-incompatible sketches succeeded, want error")
	}
	if err := store.MergeBlob("native", blob); err == nil {
		t.Fatal("MergeBlob of t-incompatible blob succeeded, want error")
	}
}

// TestRestoreGarbageBlob: RESTORE of a non-sketch payload errors cleanly.
func TestRestoreGarbageBlob(t *testing.T) {
	store, err := NewStore(core.RecommendedML(10))
	if err != nil {
		t.Fatal(err)
	}
	for _, blob := range [][]byte{nil, {0x00}, bytes.Repeat([]byte{0xab}, 100)} {
		if err := store.Restore("k", blob); err == nil {
			t.Errorf("Restore(%d-byte garbage) succeeded, want error", len(blob))
		}
	}
	if store.Len() != 0 {
		t.Errorf("garbage restores created %d keys", store.Len())
	}
}
