package server

import (
	"bufio"
	"encoding/base64"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrNoSuchKey is returned (wrapped) when a command addresses a missing
// key; test with errors.Is.
var ErrNoSuchKey = errors.New("no such key")

// ErrWrongType is returned (wrapped) when a command addresses a key
// holding another value type — e.g. PFCOUNT on a windowed key, or WADD
// on a plain sketch; test with errors.Is. The message carries the
// Redis-style WRONGTYPE marker so it survives the wire.
var ErrWrongType = errors.New("WRONGTYPE key holds a value of another type")

// ReplyError wraps any error that arrived as a well-formed "-..." reply
// line: the peer parsed the command and answered it — the connection is
// healthy and stays usable. Its absence on a non-nil error means the
// failure was transport-grade (dial, read, write, malformed stream) and
// the connection state is unknown. Unwrap preserves errors.Is tests for
// ErrNoSuchKey / ErrWrongType and errors.As for *MovedError.
type ReplyError struct {
	Err error
}

func (e *ReplyError) Error() string { return e.Err.Error() }
func (e *ReplyError) Unwrap() error { return e.Err }

// IsReplyErr reports whether err was a well-formed error reply from the
// peer (as opposed to a transport failure). Callers pooling connections
// use it to classify: reply errors keep the connection and count as
// liveness evidence; everything else warrants a redial.
func IsReplyErr(err error) bool {
	var re *ReplyError
	return errors.As(err, &re)
}

// MovedError is the parsed form of a "-MOVED e=<epoch> <id>=<addr>"
// redirect reply: the contacted node runs strict routing and does not
// own the addressed key under its map (tagged with that map's epoch).
// The primary owner's id and address are carried so a smart client can
// retry there directly; the epoch lets it ignore redirects older than
// the map it already holds.
type MovedError struct {
	Epoch  uint64
	NodeID string
	Addr   string
}

func (e *MovedError) Error() string {
	return fmt.Sprintf("MOVED e=%d %s=%s", e.Epoch, e.NodeID, e.Addr)
}

// AsMoved extracts a MovedError from err (typically nested inside a
// ReplyError) if one is present.
func AsMoved(err error) (*MovedError, bool) {
	var m *MovedError
	if errors.As(err, &m) {
		return m, true
	}
	return nil, false
}

// parseMoved parses the payload after "-MOVED " — "e=<epoch>
// <id>=<addr>". ok is false when the payload doesn't match, in which
// case the reply falls through to a generic error.
func parseMoved(rest string) (*MovedError, bool) {
	epochTok, ownerTok, ok := strings.Cut(rest, " ")
	if !ok || strings.Contains(ownerTok, " ") {
		return nil, false
	}
	es, ok := strings.CutPrefix(epochTok, "e=")
	if !ok {
		return nil, false
	}
	epoch, err := strconv.ParseUint(es, 10, 64)
	if err != nil {
		return nil, false
	}
	id, addr, ok := strings.Cut(ownerTok, "=")
	if !ok || id == "" || addr == "" {
		return nil, false
	}
	return &MovedError{Epoch: epoch, NodeID: id, Addr: addr}, true
}

// Client is a minimal client for the sketch server protocol. It is safe
// for concurrent use: commands are serialized on the single connection,
// so goroutines sharing a Client queue behind each other. Use Pipeline
// to batch many commands into one round trip, or open multiple clients
// for connection-level parallelism.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	r       *bufio.Reader
	wbuf    []byte        // reusable request-line build buffer (guarded by mu)
	timeout time.Duration // per-operation I/O deadline; 0 = none (guarded by mu)
}

// Dial connects to a sketch server.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 0)
}

// DialTimeout is Dial with a connect deadline (0 = none). The deadline
// covers only the dial; call SetOpTimeout to bound the I/O of each
// subsequent operation.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	r := bufio.NewReaderSize(conn, 64*1024)
	return &Client{conn: conn, r: r}, nil
}

// SetOpTimeout bounds every subsequent operation's network I/O: each Do
// gets one deadline for its write+read, and each Pipeline.Exec refreshes
// the deadline before the write and before every reply read (a batch is
// allowed timeout per reply, not timeout total). 0 disables. A deadline
// that trips surfaces as a net timeout error — NOT a ReplyError — so
// connection-pooling callers classify it as a transport failure and drop
// the connection, exactly like a peer that vanished.
func (c *Client) SetOpTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// armDeadline pushes the connection deadline timeout into the future
// (no-op when no timeout is set); callers hold c.mu.
func (c *Client) armDeadline() {
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
}

// clearDeadline removes any armed deadline so an idle pooled connection
// cannot time out between operations; callers hold c.mu.
func (c *Client) clearDeadline() {
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Time{})
	}
}

// Close terminates the connection.
func (c *Client) Close() error {
	return c.conn.Close()
}

// checkTokens rejects command tokens the line protocol cannot carry: an
// empty token vanishes and a token containing whitespace is split into
// several tokens (or injected as a second command) on the server —
// silently corrupting the stream. Mirrors the cluster package's
// validToken rule.
func checkTokens(parts []string) error {
	if len(parts) == 0 {
		return errors.New("server: empty command")
	}
	for _, p := range parts {
		if p == "" || strings.ContainsAny(p, " \t\r\n") {
			return fmt.Errorf("server: token %q must be non-empty and free of whitespace", p)
		}
	}
	return nil
}

// appendLine appends the space-joined command line (with trailing
// newline) to buf and returns the extended slice.
func appendLine(buf []byte, parts []string) []byte {
	for i, p := range parts {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, p...)
	}
	return append(buf, '\n')
}

// parseReply strips the type sigil from one reply line and converts
// protocol errors to Go errors.
func parseReply(line string) (string, error) {
	line = strings.TrimRight(line, "\r\n")
	if line == "" {
		return "", errors.New("server: empty reply")
	}
	switch line[0] {
	case '+', ':', '=':
		return line[1:], nil
	case '-':
		if rest, ok := strings.CutPrefix(line[1:], "MOVED "); ok {
			if mv, ok := parseMoved(rest); ok {
				return "", &ReplyError{Err: mv}
			}
		}
		msg := strings.TrimPrefix(line[1:], "ERR ")
		if msg == ErrNoSuchKey.Error() {
			return "", &ReplyError{Err: fmt.Errorf("server: %w", ErrNoSuchKey)}
		}
		if strings.HasSuffix(msg, ErrWrongType.Error()) {
			// The marker survives server-side wrapping ("server: count
			// "k": WRONGTYPE ..."), so clients can errors.Is-test it.
			return "", &ReplyError{Err: fmt.Errorf("%s%w", strings.TrimSuffix(msg, ErrWrongType.Error()), ErrWrongType)}
		}
		return "", &ReplyError{Err: errors.New(msg)}
	default:
		return "", fmt.Errorf("server: malformed reply %q", line)
	}
}

// Do sends one command line and returns the raw reply without its type
// sigil. Tokens must be non-empty and whitespace-free. Protocol errors
// come back as Go errors. Concurrent calls are serialized; each request
// sees its own reply.
func (c *Client) Do(parts ...string) (string, error) {
	if err := checkTokens(parts); err != nil {
		return "", err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.armDeadline()
	defer c.clearDeadline()
	c.wbuf = appendLine(c.wbuf[:0], parts)
	if _, err := c.conn.Write(c.wbuf); err != nil {
		return "", err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return parseReply(line)
}

// Result is one command's outcome within an executed Pipeline.
type Result struct {
	Value string // reply without its type sigil
	Err   error  // per-command protocol error, nil on success
}

// Pipeline queues commands and sends them all in a single write,
// reading the replies back in one batch — N commands cost one network
// round trip instead of N. Obtain one from Client.Pipeline, queue with
// Do/PFAdd/PFCount/Dump, then call Exec. A Pipeline is not safe for
// concurrent use; the Exec itself serializes with other commands on
// the shared connection. After Exec the pipeline is empty and can be
// reused.
type Pipeline struct {
	c   *Client
	buf []byte
	n   int
	err error // first queueing error; reported by Exec
}

// Pipeline returns an empty command pipeline on this connection.
func (c *Client) Pipeline() *Pipeline { return &Pipeline{c: c} }

// Do queues one command. Invalid tokens poison the pipeline: Exec will
// report the first such error and send nothing.
func (p *Pipeline) Do(parts ...string) {
	if p.err != nil {
		return
	}
	if err := checkTokens(parts); err != nil {
		p.err = err
		return
	}
	p.buf = appendLine(p.buf, parts)
	p.n++
}

// PFAdd queues a PFADD key element... command.
func (p *Pipeline) PFAdd(key string, elements ...string) {
	p.Do(append(append(make([]string, 0, 2+len(elements)), "PFADD", key), elements...)...)
}

// PFCount queues a PFCOUNT key... command.
func (p *Pipeline) PFCount(keys ...string) {
	p.Do(append(append(make([]string, 0, 1+len(keys)), "PFCOUNT"), keys...)...)
}

// WAdd queues a WADD key ts element... command (ts in unix
// milliseconds).
func (p *Pipeline) WAdd(key string, tsMillis int64, elements ...string) {
	parts := make([]string, 0, 3+len(elements))
	parts = append(parts, "WADD", key, strconv.FormatInt(tsMillis, 10))
	p.Do(append(parts, elements...)...)
}

// WCount queues a WCOUNT key window command.
func (p *Pipeline) WCount(key string, window time.Duration) {
	p.Do("WCOUNT", key, window.String())
}

// Dump queues a DUMP key command; decode the Result value with
// base64.StdEncoding.
func (p *Pipeline) Dump(key string) {
	p.Do("DUMP", key)
}

// Expire queues an EXPIRE key seconds command (ttl rounded up to whole
// seconds).
func (p *Pipeline) Expire(key string, ttl time.Duration) {
	secs := int64((ttl + time.Second - 1) / time.Second)
	p.Do("EXPIRE", key, strconv.FormatInt(secs, 10))
}

// Len returns the number of queued commands.
func (p *Pipeline) Len() int { return p.n }

// Exec sends every queued command in one write and reads the replies in
// order. The returned slice has one Result per queued command;
// per-command protocol errors land in Result.Err. A non-nil error means
// the batch as a whole failed (queueing error: nothing was sent;
// transport error: the connection is broken) — the results are then
// nil. Exec resets the pipeline for reuse either way.
func (p *Pipeline) Exec() ([]Result, error) {
	buf, n, err := p.buf, p.n, p.err
	p.buf, p.n, p.err = p.buf[:0], 0, nil
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	c := p.c
	c.mu.Lock()
	defer c.mu.Unlock()
	c.armDeadline()
	defer c.clearDeadline()
	if _, err := c.conn.Write(buf); err != nil {
		return nil, err
	}
	results := make([]Result, n)
	for i := range results {
		c.armDeadline() // per-reply budget: a long batch is not one deadline
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("server: pipeline reply %d/%d: %w", i+1, n, err)
		}
		results[i].Value, results[i].Err = parseReply(line)
	}
	return results, nil
}

// PFAdd inserts elements into key; it reports whether the sketch changed.
func (c *Client) PFAdd(key string, elements ...string) (bool, error) {
	reply, err := c.Do(append([]string{"PFADD", key}, elements...)...)
	if err != nil {
		return false, err
	}
	return reply == "1", nil
}

// PFCount returns the estimated distinct count of the union of keys.
func (c *Client) PFCount(keys ...string) (int64, error) {
	reply, err := c.Do(append([]string{"PFCOUNT"}, keys...)...)
	if err != nil {
		return 0, err
	}
	return strconv.ParseInt(reply, 10, 64)
}

// PFMerge stores the union of the sources at dest.
func (c *Client) PFMerge(dest string, sources ...string) error {
	_, err := c.Do(append([]string{"PFMERGE", dest}, sources...)...)
	return err
}

// WAdd inserts elements observed at the unix-millisecond timestamp ts
// into the sliding-window counter at key (created on first use); it
// returns how many elements were accepted — the rest were older than
// the key's ring span.
func (c *Client) WAdd(key string, tsMillis int64, elements ...string) (int, error) {
	parts := make([]string, 0, 3+len(elements))
	parts = append(parts, "WADD", key, strconv.FormatInt(tsMillis, 10))
	reply, err := c.Do(append(parts, elements...)...)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(reply)
	if err != nil {
		return 0, fmt.Errorf("server: unexpected WADD reply %q", reply)
	}
	return n, nil
}

// WCount returns the estimated distinct count the windowed key
// observed over the window ending at its newest timestamp.
func (c *Client) WCount(key string, window time.Duration) (int64, error) {
	reply, err := c.Do("WCOUNT", key, window.String())
	if err != nil {
		return 0, err
	}
	return strconv.ParseInt(reply, 10, 64)
}

// WCountAt is WCount with an explicit window end (unix milliseconds) —
// the deterministic form replayed streams and tests use.
func (c *Client) WCountAt(key string, window time.Duration, tsMillis int64) (int64, error) {
	reply, err := c.Do("WCOUNT", key, window.String(), strconv.FormatInt(tsMillis, 10))
	if err != nil {
		return 0, err
	}
	return strconv.ParseInt(reply, 10, 64)
}

// WInfo describes the windowed key: ring geometry, newest observed
// timestamp, dropped-insert count and full-span estimate.
func (c *Client) WInfo(key string) (string, error) {
	return c.Do("WINFO", key)
}

// Expire sets key's time-to-live in whole seconds (rounded up from the
// duration); it reports whether the key existed.
func (c *Client) Expire(key string, ttl time.Duration) (bool, error) {
	secs := int64((ttl + time.Second - 1) / time.Second)
	reply, err := c.Do("EXPIRE", key, strconv.FormatInt(secs, 10))
	if err != nil {
		return false, err
	}
	return reply == "1", nil
}

// PExpire sets key's time-to-live in milliseconds; it reports whether
// the key existed.
func (c *Client) PExpire(key string, ttl time.Duration) (bool, error) {
	reply, err := c.Do("PEXPIRE", key, strconv.FormatInt(ttl.Milliseconds(), 10))
	if err != nil {
		return false, err
	}
	return reply == "1", nil
}

// TTL returns key's remaining time-to-live in whole seconds, following
// the Redis convention: -2 missing key, -1 no deadline.
func (c *Client) TTL(key string) (int64, error) {
	reply, err := c.Do("TTL", key)
	if err != nil {
		return 0, err
	}
	return strconv.ParseInt(reply, 10, 64)
}

// Persist removes key's deadline; it reports whether one was removed.
func (c *Client) Persist(key string) (bool, error) {
	reply, err := c.Do("PERSIST", key)
	if err != nil {
		return false, err
	}
	return reply == "1", nil
}

// Del removes a key; it reports whether the key existed.
func (c *Client) Del(key string) (bool, error) {
	reply, err := c.Do("DEL", key)
	if err != nil {
		return false, err
	}
	return reply == "1", nil
}

// Keys lists all keys.
func (c *Client) Keys() ([]string, error) {
	reply, err := c.Do("KEYS")
	if err != nil {
		return nil, err
	}
	if reply == "" {
		return nil, nil
	}
	return strings.Fields(reply), nil
}

// Dump returns the serialized sketch at key.
func (c *Client) Dump(key string) ([]byte, error) {
	reply, err := c.Do("DUMP", key)
	if err != nil {
		return nil, err
	}
	return base64.StdEncoding.DecodeString(reply)
}

// Restore replaces the sketch at key with serialized sketch data.
func (c *Client) Restore(key string, data []byte) error {
	_, err := c.Do("RESTORE", key, base64.StdEncoding.EncodeToString(data))
	return err
}

// Ping checks liveness.
func (c *Client) Ping() error {
	reply, err := c.Do("PING")
	if err != nil {
		return err
	}
	if reply != "PONG" {
		return fmt.Errorf("server: unexpected ping reply %q", reply)
	}
	return nil
}
