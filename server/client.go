package server

import (
	"bufio"
	"encoding/base64"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
)

// ErrNoSuchKey is returned (wrapped) when a command addresses a missing
// key; test with errors.Is.
var ErrNoSuchKey = errors.New("no such key")

// Client is a minimal client for the sketch server protocol. It is safe
// for concurrent use: commands are serialized on the single connection,
// so goroutines sharing a Client queue behind each other. Open multiple
// clients for pipelined throughput.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
}

// Dial connects to a sketch server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	r := bufio.NewReaderSize(conn, 64*1024)
	return &Client{conn: conn, r: r}, nil
}

// Close terminates the connection.
func (c *Client) Close() error {
	return c.conn.Close()
}

// Do sends one command line and returns the raw reply without its type
// sigil. Protocol errors come back as Go errors. Concurrent calls are
// serialized; each request sees its own reply.
func (c *Client) Do(parts ...string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprintln(c.conn, strings.Join(parts, " ")); err != nil {
		return "", err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimRight(line, "\r\n")
	if line == "" {
		return "", errors.New("server: empty reply")
	}
	switch line[0] {
	case '+', ':', '=':
		return line[1:], nil
	case '-':
		msg := strings.TrimPrefix(line[1:], "ERR ")
		if msg == ErrNoSuchKey.Error() {
			return "", fmt.Errorf("server: %w", ErrNoSuchKey)
		}
		return "", errors.New(msg)
	default:
		return "", fmt.Errorf("server: malformed reply %q", line)
	}
}

// PFAdd inserts elements into key; it reports whether the sketch changed.
func (c *Client) PFAdd(key string, elements ...string) (bool, error) {
	reply, err := c.Do(append([]string{"PFADD", key}, elements...)...)
	if err != nil {
		return false, err
	}
	return reply == "1", nil
}

// PFCount returns the estimated distinct count of the union of keys.
func (c *Client) PFCount(keys ...string) (int64, error) {
	reply, err := c.Do(append([]string{"PFCOUNT"}, keys...)...)
	if err != nil {
		return 0, err
	}
	return strconv.ParseInt(reply, 10, 64)
}

// PFMerge stores the union of the sources at dest.
func (c *Client) PFMerge(dest string, sources ...string) error {
	_, err := c.Do(append([]string{"PFMERGE", dest}, sources...)...)
	return err
}

// Del removes a key; it reports whether the key existed.
func (c *Client) Del(key string) (bool, error) {
	reply, err := c.Do("DEL", key)
	if err != nil {
		return false, err
	}
	return reply == "1", nil
}

// Keys lists all keys.
func (c *Client) Keys() ([]string, error) {
	reply, err := c.Do("KEYS")
	if err != nil {
		return nil, err
	}
	if reply == "" {
		return nil, nil
	}
	return strings.Fields(reply), nil
}

// Dump returns the serialized sketch at key.
func (c *Client) Dump(key string) ([]byte, error) {
	reply, err := c.Do("DUMP", key)
	if err != nil {
		return nil, err
	}
	return base64.StdEncoding.DecodeString(reply)
}

// Restore replaces the sketch at key with serialized sketch data.
func (c *Client) Restore(key string, data []byte) error {
	_, err := c.Do("RESTORE", key, base64.StdEncoding.EncodeToString(data))
	return err
}

// Ping checks liveness.
func (c *Client) Ping() error {
	reply, err := c.Do("PING")
	if err != nil {
		return err
	}
	if reply != "PONG" {
		return fmt.Errorf("server: unexpected ping reply %q", reply)
	}
	return nil
}
