package server

import (
	"fmt"
	"sync"
	"testing"

	"exaloglog/internal/core"
)

func startTestServer(t *testing.T) *Server {
	t.Helper()
	store, err := NewStore(core.RecommendedML(10))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestClientConcurrentUse hammers one shared Client from many
// goroutines; command/reply pairs must never interleave (run with -race).
func TestClientConcurrentUse(t *testing.T) {
	srv := startTestServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const goroutines, ops = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("key-%d", g)
			for i := 0; i < ops; i++ {
				if _, err := c.PFAdd(key, fmt.Sprintf("el-%d", i)); err != nil {
					errs <- err
					return
				}
				n, err := c.PFCount(key)
				if err != nil {
					errs <- err
					return
				}
				if n < 1 || n > ops+ops/10 {
					errs <- fmt.Errorf("goroutine %d: PFCount(%s) = %d, out of range (interleaved replies?)", g, key, n)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestMultiClientConcurrentUse does the same through a MultiClient over
// two shards.
func TestMultiClientConcurrentUse(t *testing.T) {
	a, b := startTestServer(t), startTestServer(t)
	mc, err := DialMulti(a.Addr(), b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()

	const goroutines, ops = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("key-%d", g)
			for i := 0; i < ops; i++ {
				if _, err := mc.PFAdd(key, fmt.Sprintf("el-%d", i)); err != nil {
					errs <- err
					return
				}
			}
			n, err := mc.PFCount(key)
			if err != nil {
				errs <- err
				return
			}
			if int64(n+0.5) < ops-ops/10 || int64(n+0.5) > ops+ops/10 {
				errs <- fmt.Errorf("goroutine %d: PFCount(%s) = %v, want ≈%d", g, key, n, ops)
				return
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
