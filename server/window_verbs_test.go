package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"exaloglog/internal/core"
	"exaloglog/window"
)

// baseMS is a fixed stream epoch: every windowed test supplies explicit
// timestamps, so nothing here reads a wall clock.
const baseMS = int64(1_750_000_000_000)

// TestWAddWCountEndToEnd drives the windowed workload over the wire
// with explicit timestamps and checks every estimate against a
// reference window.Counter fed the same stream — merging slices is
// lossless, so equality is exact, including the sliding-expiry edge.
func TestWAddWCountEndToEnd(t *testing.T) {
	srv, c := startServer(t)
	ref, err := window.New(srv.Store().Config(), time.Second, 60)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 10; s++ {
		ts := baseMS + int64(s)*1000
		for e := 0; e < 40; e++ {
			el := fmt.Sprintf("src-%d-%d", s, e)
			n, err := c.WAdd("ddos:victim", ts, el)
			if err != nil {
				t.Fatal(err)
			}
			if n != 1 {
				t.Fatalf("WADD accepted %d of 1 in-span elements", n)
			}
			ref.AddString(time.UnixMilli(ts), el)
		}
	}
	nowMS := baseMS + 9_000
	for _, w := range []time.Duration{time.Second, 5 * time.Second, 30 * time.Second} {
		got, err := c.WCountAt("ddos:victim", w, nowMS)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(ref.Estimate(time.UnixMilli(nowMS), w) + 0.5)
		if got != want {
			t.Errorf("WCOUNT %v = %d, want %d (must match a local ring exactly)", w, got, want)
		}
	}
	// Default "now" is the key's newest observed timestamp.
	defGot, err := c.WCount("ddos:victim", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	expGot, err := c.WCountAt("ddos:victim", 5*time.Second, nowMS)
	if err != nil {
		t.Fatal(err)
	}
	if defGot != expGot {
		t.Errorf("WCOUNT default now = %d, explicit latest = %d", defGot, expGot)
	}
	// Slide far forward: everything expires out of a short window.
	if _, err := c.WAdd("ddos:victim", nowMS+120_000, "much-later"); err != nil {
		t.Fatal(err)
	}
	got, err := c.WCountAt("ddos:victim", 5*time.Second, nowMS+120_000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("after the window slid past the burst, WCOUNT = %d, want 1", got)
	}
	// A missing key counts zero, like PFCOUNT.
	if got, err := c.WCount("nope", time.Second); err != nil || got != 0 {
		t.Errorf("WCOUNT of missing key = %d, %v; want 0, nil", got, err)
	}
}

// TestWAddDropsAndWInfo: elements older than the ring span are dropped,
// the WADD reply says how many survived, and WINFO surfaces the
// cumulative Dropped statistic alongside the ring geometry.
func TestWAddDropsAndWInfo(t *testing.T) {
	_, c := startServer(t)
	if _, err := c.WAdd("k", baseMS, "fresh"); err != nil {
		t.Fatal(err)
	}
	// Two elements older than the 60s ring span: neither is accepted.
	n, err := c.WAdd("k", baseMS-120_000, "old-a", "old-b")
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("WADD of two span-old elements accepted %d", n)
	}
	info, err := c.WInfo("k")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"slice=1s", "slices=60", "span=1m0s", "dropped=2", fmt.Sprintf("latest=%d", baseMS)} {
		if !strings.Contains(info, want) {
			t.Errorf("WINFO %q lacks %q", info, want)
		}
	}
	if _, err := c.WInfo("missing"); !errors.Is(err, ErrNoSuchKey) {
		t.Errorf("WINFO of missing key: %v, want ErrNoSuchKey", err)
	}
	// INFO works on windowed keys too, with a type marker.
	generic, err := c.Do("INFO", "k")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(generic, "type=window ") {
		t.Errorf("INFO on a windowed key = %q, want a type=window description", generic)
	}
}

// TestTypedVerbsRejectWrongValueType: the keyspace is polymorphic but
// verbs are typed — every cross-type access fails with a WRONGTYPE
// error the client maps to ErrWrongType, and the key's state stays
// untouched.
func TestTypedVerbsRejectWrongValueType(t *testing.T) {
	_, c := startServer(t)
	if _, err := c.PFAdd("plain", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WAdd("windowed", baseMS, "x"); err != nil {
		t.Fatal(err)
	}
	cross := []struct {
		name string
		err  error
	}{
		{"WADD on plain", func() error { _, err := c.WAdd("plain", baseMS, "x"); return err }()},
		{"WCOUNT on plain", func() error { _, err := c.WCount("plain", time.Second); return err }()},
		{"WINFO on plain", func() error { _, err := c.WInfo("plain"); return err }()},
		{"PFADD on windowed", func() error { _, err := c.PFAdd("windowed", "x"); return err }()},
		{"PFCOUNT on windowed", func() error { _, err := c.PFCount("windowed"); return err }()},
		{"PFCOUNT union over windowed", func() error { _, err := c.PFCount("plain", "windowed"); return err }()},
		{"PFMERGE from windowed", c.PFMerge("dest", "windowed")},
		{"PFMERGE into windowed", c.PFMerge("windowed", "plain")},
	}
	for _, tc := range cross {
		if !errors.Is(tc.err, ErrWrongType) {
			t.Errorf("%s: error %v, want ErrWrongType", tc.name, tc.err)
		}
	}
	// Both keys are intact after the failed cross-type traffic.
	if n, err := c.PFCount("plain"); err != nil || n != 2 {
		t.Errorf("plain key after wrongtype traffic: %d, %v", n, err)
	}
	if n, err := c.WCount("windowed", time.Minute); err != nil || n != 1 {
		t.Errorf("windowed key after wrongtype traffic: %d, %v", n, err)
	}
}

// TestWindowVerbArgumentErrors mirrors TestArgumentErrors for the
// windowed verbs.
func TestWindowVerbArgumentErrors(t *testing.T) {
	_, c := startServer(t)
	for _, cmd := range [][]string{
		{"WADD"},
		{"WADD", "key"},
		{"WADD", "key", "123"},            // no elements
		{"WADD", "key", "notatime", "el"}, // bad timestamp
		{"WCOUNT"},
		{"WCOUNT", "key"},
		{"WCOUNT", "key", "nonsense"},       // bad duration
		{"WCOUNT", "key", "-5s"},            // non-positive window
		{"WCOUNT", "key", "5s", "notatime"}, // bad explicit now
		{"WCOUNT", "key", "5s", "1", "2"},   // too many args
		{"WINFO"},
		{"WINFO", "a", "b"},
	} {
		if _, err := c.Do(cmd...); err == nil {
			t.Errorf("command %v accepted", cmd)
		}
	}
}

// TestWAddHostileTimestamps: pre-epoch and overflowing timestamps are
// attacker-controlled wire input; they must come back as dropped
// inserts (`:0`), never panic the server, and the connection (and the
// whole process) must stay up.
func TestWAddHostileTimestamps(t *testing.T) {
	_, c := startServer(t)
	for _, ts := range []int64{-5_000, -9_000_000_000_000, 9_000_000_000_000_000} {
		n, err := c.WAdd("k", ts, "el")
		if err != nil {
			t.Fatalf("WAdd(ts=%d): %v", ts, err)
		}
		if n != 0 {
			t.Errorf("WAdd(ts=%d) accepted %d, want 0", ts, n)
		}
	}
	// The server survived and the key still works.
	if n, err := c.WAdd("k", baseMS, "fine"); err != nil || n != 1 {
		t.Fatalf("WAdd after hostile timestamps: %d, %v", n, err)
	}
	if got, err := c.WCount("k", time.Minute); err != nil || got != 1 {
		t.Errorf("WCount after hostile timestamps: %d, %v; want 1", got, err)
	}
}

// TestWindowDumpRestoreMergeBlob: windowed values flow through the
// generic persistence verbs — DUMP yields the slot-wise blob, RESTORE
// recreates the ring (even over a plain key), and MergeBlob merges
// slot-wise, staying idempotent (the property replication relies on).
func TestWindowDumpRestoreMergeBlob(t *testing.T) {
	srv, c := startServer(t)
	for s := 0; s < 5; s++ {
		for e := 0; e < 30; e++ {
			if _, err := c.WAdd("w", baseMS+int64(s)*1000, fmt.Sprintf("el-%d-%d", s, e)); err != nil {
				t.Fatal(err)
			}
		}
	}
	blob, err := c.Dump("w")
	if err != nil {
		t.Fatal(err)
	}
	if !window.IsSerialized(blob) {
		t.Fatal("DUMP of a windowed key is not a window blob")
	}
	// RESTORE over a plain key switches its type.
	if _, err := c.PFAdd("other", "x"); err != nil {
		t.Fatal(err)
	}
	if err := c.Restore("other", blob); err != nil {
		t.Fatal(err)
	}
	a, _ := c.WCount("w", time.Minute)
	b, err := c.WCount("other", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("restored windowed key counts %d, want %d", b, a)
	}
	// MergeBlob is idempotent: merging the same ring in twice changes
	// nothing (slice-level sketch union).
	store := srv.Store()
	if err := store.MergeBlob("w", blob); err != nil {
		t.Fatal(err)
	}
	if err := store.MergeBlob("w", blob); err != nil {
		t.Fatal(err)
	}
	after, err := c.WCount("w", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if after != a {
		t.Errorf("idempotent re-merge moved the count %d → %d", a, after)
	}
	// Disjoint rings union: a second server's ring merges in slot-wise.
	st2, err := NewStore(srv.Store().Config())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.WindowAdd("w", time.UnixMilli(baseMS), "only-on-2"); err != nil {
		t.Fatal(err)
	}
	blob2, _ := st2.Dump("w")
	if err := store.MergeBlob("w", blob2); err != nil {
		t.Fatal(err)
	}
	union, _ := c.WCount("w", time.Minute)
	if union != a+1 {
		t.Errorf("slot-wise union counts %d, want %d", union, a+1)
	}
	// A windowed blob cannot merge into a non-empty plain key.
	if err := store.MergeBlob("plain-busy", []byte{}); err == nil {
		t.Error("empty blob accepted")
	}
	if _, err := c.PFAdd("plain-busy", "x"); err != nil {
		t.Fatal(err)
	}
	if err := store.MergeBlob("plain-busy", blob); !errors.Is(err, ErrWrongType) {
		t.Errorf("cross-type MergeBlob: %v, want ErrWrongType", err)
	}
}

// TestPipelineWindowVerbs: WADD/WCOUNT batch through the pipeline like
// the plain verbs.
func TestPipelineWindowVerbs(t *testing.T) {
	_, c := startServer(t)
	p := c.Pipeline()
	for i := 0; i < 50; i++ {
		p.WAdd("pw", baseMS+int64(i)*100, fmt.Sprintf("el-%d", i))
	}
	p.WCount("pw", time.Minute)
	results, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 51 {
		t.Fatalf("got %d results, want 51", len(results))
	}
	for i := 0; i < 50; i++ {
		if results[i].Err != nil || results[i].Value != "1" {
			t.Fatalf("pipelined WADD %d: %q, %v", i, results[i].Value, results[i].Err)
		}
	}
	if results[50].Err != nil || results[50].Value != "50" {
		t.Errorf("pipelined WCOUNT: %q, %v; want 50", results[50].Value, results[50].Err)
	}
}

// TestMultiClientWindow: client-side sharding routes WADD by key and
// WCount unions shard rings slot-wise.
func TestMultiClientWindow(t *testing.T) {
	var addrs []string
	var stores []*Store
	for i := 0; i < 3; i++ {
		store, err := NewStore(core.RecommendedML(12))
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(store)
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs = append(addrs, srv.Addr())
		stores = append(stores, store)
	}
	mc, err := DialMulti(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mc.Close() })

	ref, _ := window.New(core.RecommendedML(12), time.Second, 60)
	for i := 0; i < 200; i++ {
		el := fmt.Sprintf("s-%d", i)
		ts := baseMS + int64(i)*50
		if _, err := mc.WAdd("scan", ts, el); err != nil {
			t.Fatal(err)
		}
		ref.AddString(time.UnixMilli(ts), el)
	}
	// The key lives on exactly one shard (hash routing)...
	holders := 0
	for _, st := range stores {
		if st.Len() > 0 {
			holders++
		}
	}
	if holders != 1 {
		t.Errorf("windowed key spread over %d shards, want 1", holders)
	}
	// ...but WCount would also survive multi-shard copies: write the
	// same key directly on another shard and the union stays exact.
	for _, st := range stores {
		if st.Len() == 0 {
			if _, err := st.WindowAdd("scan", time.UnixMilli(baseMS), "extra"); err != nil {
				t.Fatal(err)
			}
			ref.AddString(time.UnixMilli(baseMS), "extra")
			break
		}
	}
	got, err := mc.WCount("scan", 30*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Estimate(ref.Latest(), 30*time.Second)
	if got != want {
		t.Errorf("MultiClient.WCount = %v, want %v", got, want)
	}
	// WCount on a plain-sketch key maps to ErrWrongType, matching the
	// single-node and cluster paths (not a raw decode error).
	if _, err := mc.PFAdd("plain", "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := mc.WCount("plain", time.Second, 0); !errors.Is(err, ErrWrongType) {
		t.Errorf("MultiClient.WCount on a plain key: %v, want ErrWrongType", err)
	}
}

// FuzzWindowVerbFraming mirrors FuzzGossipDecode at the dispatch layer:
// arbitrary WADD/WCOUNT/WINFO argument bytes must never panic the
// server or produce an unframed reply — every line the dispatcher
// emits starts with a valid type sigil.
func FuzzWindowVerbFraming(f *testing.F) {
	f.Add("key 1750000000000 el1 el2")
	f.Add("key notatime el")
	f.Add("key 99999999999999999999 el")
	f.Add("key -1 el")
	f.Add("key -5000 el")
	f.Add("key -9000000000000000 el")
	f.Add("key 9000000000000000000 el")
	f.Add("key 5s")
	f.Add("key 5s 1750000000000")
	f.Add("key 1h9m0.5s extra extra")
	f.Add("")
	f.Add("\t \r")
	f.Add("k \x00 \xff")
	f.Fuzz(func(t *testing.T, args string) {
		store, err := NewStore(core.RecommendedML(8))
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(store)
		var out bytes.Buffer
		cc := &connCtx{s: srv, w: bufio.NewWriterSize(&out, 64*1024)}
		for _, verb := range []string{"WADD ", "WCOUNT ", "WINFO ", "PFADD ", "PFCOUNT "} {
			if quit := cc.exec([]byte(verb + args + "\n")); quit {
				t.Fatalf("%s%q quit the connection", verb, args)
			}
		}
		cc.w.Flush()
		for _, line := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
			if line == "" {
				continue
			}
			switch line[0] {
			case '+', '-', ':', '=':
			default:
				t.Fatalf("unframed reply line %q for args %q", line, args)
			}
		}
	})
}
