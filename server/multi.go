package server

import (
	"encoding/base64"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"exaloglog/internal/core"
	"exaloglog/window"
)

// MultiClient talks to a fleet of sketch servers as one logical store:
// writes are routed to a shard by key hash, and distinct-count queries
// merge the per-shard sketches client-side — the cross-node aggregation
// pattern that sketch mergeability (paper Section 1) exists for. Because
// the union happens on serialized sketches, a key may also legitimately
// exist on several shards (e.g. regional writers); Count still returns
// the exact union estimate.
//
// A MultiClient is safe for concurrent use: the underlying Clients
// serialize commands per connection, so concurrent PFAdds to different
// shards proceed in parallel while same-shard commands queue.
//
// Note for migrators: MultiClient shards client-side, so every reader
// must know the full topology and pay the merge cost itself. The cluster
// package moves sharding, replication and scatter-gather aggregation
// server-side — clients talk to any one node — and is the recommended
// path for new deployments.
type MultiClient struct {
	clients []*Client
}

// DialMulti connects to all the given servers.
func DialMulti(addrs ...string) (*MultiClient, error) {
	if len(addrs) == 0 {
		return nil, errors.New("server: DialMulti needs at least one address")
	}
	mc := &MultiClient{}
	for _, addr := range addrs {
		c, err := Dial(addr)
		if err != nil {
			mc.Close()
			return nil, fmt.Errorf("server: dial %s: %w", addr, err)
		}
		mc.clients = append(mc.clients, c)
	}
	return mc, nil
}

// Close terminates all connections.
func (mc *MultiClient) Close() error {
	var first error
	for _, c := range mc.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// NumShards returns the number of connected servers.
func (mc *MultiClient) NumShards() int { return len(mc.clients) }

// shardFor routes a key to a shard by FNV-1a hash.
func (mc *MultiClient) shardFor(key string) *Client {
	h := fnv.New32a()
	h.Write([]byte(key))
	return mc.clients[int(h.Sum32())%len(mc.clients)]
}

// PFAdd inserts elements into key on its home shard.
func (mc *MultiClient) PFAdd(key string, elements ...string) (bool, error) {
	return mc.shardFor(key).PFAdd(key, elements...)
}

// PFCount estimates the distinct count of the union of the given keys
// across all shards: every shard's sketch for every key is fetched with
// DUMP and merged locally. Missing keys contribute nothing. The DUMPs
// for all keys go to each shard as one pipelined batch and the shards
// are queried concurrently, so the query costs one round trip per
// shard instead of one per (shard, key) pair.
func (mc *MultiClient) PFCount(keys ...string) (float64, error) {
	batches := make([][]Result, len(mc.clients))
	errs := make([]error, len(mc.clients))
	var wg sync.WaitGroup
	for i, c := range mc.clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			p := c.Pipeline()
			for _, key := range keys {
				p.Dump(key)
			}
			batches[i], errs[i] = p.Exec()
		}(i, c)
	}
	wg.Wait()
	var acc *core.Sketch
	for i, results := range batches {
		if errs[i] != nil {
			return 0, fmt.Errorf("server: shard %d: %w", i, errs[i])
		}
		for _, res := range results {
			if res.Err != nil {
				if errors.Is(res.Err, ErrNoSuchKey) {
					continue
				}
				return 0, fmt.Errorf("server: shard %d: %w", i, res.Err)
			}
			blob, err := base64.StdEncoding.DecodeString(res.Value)
			if err != nil {
				return 0, err
			}
			sk, err := core.FromBinary(blob)
			if err != nil {
				return 0, err
			}
			if acc == nil {
				acc = sk
				continue
			}
			if acc.Config() == sk.Config() {
				if err := acc.Merge(sk); err != nil {
					return 0, err
				}
				continue
			}
			merged, err := core.MergeCompatible(acc, sk)
			if err != nil {
				return 0, err
			}
			acc = merged
		}
	}
	if acc == nil {
		return 0, nil
	}
	return acc.Estimate(), nil
}

// WAdd inserts elements observed at the unix-millisecond timestamp ts
// into the windowed key on its home shard; it returns how many
// elements were accepted.
func (mc *MultiClient) WAdd(key string, tsMillis int64, elements ...string) (int, error) {
	return mc.shardFor(key).WAdd(key, tsMillis, elements...)
}

// WCount estimates the distinct count the windowed key observed over
// the window ending at tsMillis (0: the newest timestamp any shard
// observed). Like PFCount it tolerates the key existing on several
// shards — every shard's ring is fetched with DUMP and merged
// slot-wise, so the union is exact at slice granularity.
func (mc *MultiClient) WCount(key string, win time.Duration, tsMillis int64) (float64, error) {
	blobs := make([][]byte, len(mc.clients))
	errs := make([]error, len(mc.clients))
	var wg sync.WaitGroup
	for i, c := range mc.clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			blob, err := c.Dump(key)
			if errors.Is(err, ErrNoSuchKey) {
				return
			}
			blobs[i], errs[i] = blob, err
		}(i, c)
	}
	wg.Wait()
	var acc *window.Counter
	for i, blob := range blobs {
		if errs[i] != nil {
			return 0, fmt.Errorf("server: shard %d: %w", i, errs[i])
		}
		if blob == nil {
			continue
		}
		if !window.IsSerialized(blob) {
			// A plain-sketch copy of the key: same ErrWrongType the
			// single-node and cluster paths report, not a decode error.
			return 0, fmt.Errorf("server: shard %d: key %q: %w", i, key, ErrWrongType)
		}
		c, err := window.FromBinary(blob)
		if err != nil {
			return 0, fmt.Errorf("server: shard %d: %w", i, err)
		}
		if acc == nil {
			acc = c
			continue
		}
		if err := acc.Merge(c); err != nil {
			return 0, fmt.Errorf("server: shard %d: %w", i, err)
		}
	}
	if acc == nil {
		return 0, nil
	}
	now := acc.Latest()
	if tsMillis != 0 {
		now = time.UnixMilli(tsMillis)
	}
	if now.IsZero() {
		return 0, nil
	}
	return acc.Estimate(now, win), nil
}

// Keys returns the union of all shards' keys, sorted and deduplicated.
func (mc *MultiClient) Keys() ([]string, error) {
	seen := make(map[string]struct{})
	for _, c := range mc.clients {
		keys, err := c.Keys()
		if err != nil {
			return nil, err
		}
		for _, k := range keys {
			seen[k] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// Ping checks liveness of every shard.
func (mc *MultiClient) Ping() error {
	for i, c := range mc.clients {
		if err := c.Ping(); err != nil {
			return fmt.Errorf("server: shard %d: %w", i, err)
		}
	}
	return nil
}
