package server

import (
	"fmt"
	"time"

	"exaloglog/internal/core"
	"exaloglog/window"
)

// SketchValue is the polymorphic value a store key holds. The store's
// machinery — sharded buckets, the per-entry lock and version counter,
// the cached estimate, snapshot and rebalance plumbing — is shared
// across implementations; only the value semantics differ:
//
//   - ellValue: a plain ExaLogLog sketch, the value PFADD / PFCOUNT /
//     PFMERGE operate on.
//   - windowValue: a sliding-window slice-ring of sketches
//     (window.Counter), the value WADD / WCOUNT / WINFO operate on —
//     the paper's port-scan/DDoS motivation served as a data-store
//     command.
//
// Commands are typed: addressing a key with a verb of the other value
// type fails with ErrWrongType rather than silently corrupting state
// (the Redis WRONGTYPE convention). Adding a new workload means adding
// an implementation here and registering its verbs in the command
// registry — no dispatch or persistence changes.
type SketchValue interface {
	// Tag identifies the value type in snapshot v3 records.
	Tag() byte
	// Estimate is the value's headline distinct-count estimate (plain:
	// the sketch estimate; windowed: the full-span estimate at the
	// newest observed timestamp).
	Estimate() float64
	// MarshalBinary serializes the value. Plain sketches keep the raw
	// core format, so pre-existing DUMP consumers are unaffected;
	// window rings use the self-describing "ELW1" slot-wise format.
	MarshalBinary() ([]byte, error)
	// Info renders the INFO reply body.
	Info() string
	// SizeBytes approximates the value's resident heap footprint — the
	// store's resident_bytes gauge and the eviction watermarks sum it
	// per key. It only needs to be proportional, not exact.
	SizeBytes() int
	// empty reports whether the value carries no observed state yet (a
	// just-created value a replication blob of any type may overwrite).
	empty() bool
}

// Value type tags, as written in snapshot v3 records.
const (
	valueTagEll    = byte('E')
	valueTagWindow = byte('W')
)

// ellValue adapts *core.Sketch to SketchValue.
type ellValue struct {
	sk *core.Sketch
}

func (v *ellValue) Tag() byte                      { return valueTagEll }
func (v *ellValue) Estimate() float64              { return v.sk.Estimate() }
func (v *ellValue) MarshalBinary() ([]byte, error) { return v.sk.MarshalBinary() }
func (v *ellValue) SizeBytes() int                 { return v.sk.MemoryFootprint() }
func (v *ellValue) empty() bool                    { return v.sk.IsEmpty() }

func (v *ellValue) Info() string {
	cfg := v.sk.Config()
	return fmt.Sprintf("t=%d d=%d p=%d bytes=%d estimate=%.1f",
		cfg.T, cfg.D, cfg.P, v.sk.SizeBytes(), v.sk.Estimate())
}

// windowValue adapts *window.Counter to SketchValue.
type windowValue struct {
	c *window.Counter
}

func (v *windowValue) Tag() byte                      { return valueTagWindow }
func (v *windowValue) Estimate() float64              { return v.c.Estimate(v.c.Latest(), v.c.Span()) }
func (v *windowValue) MarshalBinary() ([]byte, error) { return v.c.MarshalBinary() }
func (v *windowValue) SizeBytes() int                 { return v.c.MemoryFootprint() }
func (v *windowValue) empty() bool                    { return v.c.Latest().IsZero() && v.c.Dropped() == 0 }

func (v *windowValue) Info() string {
	return "type=window " + v.c.Describe()
}

// decodeValue reconstructs a SketchValue from a serialized blob,
// dispatching on the blob's own magic: "ELW1" is a window ring,
// anything else is handed to the core sketch decoder. This is what
// keeps RESTORE, ABSORB and snapshot blobs polymorphic without a wire
// change — every value format is self-describing.
func decodeValue(data []byte) (SketchValue, error) {
	if window.IsSerialized(data) {
		c, err := window.FromBinary(data)
		if err != nil {
			return nil, err
		}
		return &windowValue{c: c}, nil
	}
	sk, err := core.FromBinary(data)
	if err != nil {
		return nil, err
	}
	return &ellValue{sk: sk}, nil
}

// decodeValueTagged is decodeValue for snapshot v3 records, where the
// expected type travels beside the blob; a tag/blob mismatch is
// corruption and must fail loudly.
func decodeValueTagged(tag byte, data []byte) (SketchValue, error) {
	switch tag {
	case valueTagEll:
		sk, err := core.FromBinary(data)
		if err != nil {
			return nil, err
		}
		return &ellValue{sk: sk}, nil
	case valueTagWindow:
		c, err := window.FromBinary(data)
		if err != nil {
			return nil, err
		}
		return &windowValue{c: c}, nil
	default:
		return nil, fmt.Errorf("unknown value type tag %q", tag)
	}
}

// ellLocked returns the entry's plain sketch; the caller holds e.mu.
func (e *entry) ellLocked() (*core.Sketch, error) {
	v, ok := e.val.(*ellValue)
	if !ok {
		return nil, ErrWrongType
	}
	return v.sk, nil
}

// windowLocked returns the entry's window counter; the caller holds e.mu.
func (e *entry) windowLocked() (*window.Counter, error) {
	v, ok := e.val.(*windowValue)
	if !ok {
		return nil, ErrWrongType
	}
	return v.c, nil
}

// Window-key creation defaults: 1-second slices, 60 of them — a
// one-minute maximum window at one-second edge granularity.
const (
	defaultWindowSlice  = time.Second
	defaultWindowSlices = 60
)
