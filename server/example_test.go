package server_test

import (
	"fmt"

	"exaloglog"
	"exaloglog/server"
)

// Run an in-process sketch service and talk to it with the client.
func ExampleServer() {
	store, err := server.NewStore(exaloglog.Config{T: 2, D: 20, P: 12})
	if err != nil {
		panic(err)
	}
	srv := server.NewServer(store)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		panic(err)
	}
	defer srv.Close()

	c, err := server.Dial(srv.Addr())
	if err != nil {
		panic(err)
	}
	defer c.Close()

	if _, err := c.PFAdd("visits", "alice", "bob", "alice"); err != nil {
		panic(err)
	}
	n, err := c.PFCount("visits")
	if err != nil {
		panic(err)
	}
	fmt.Println("distinct visitors:", n)
	// Output:
	// distinct visitors: 2
}
