package server

import (
	"bufio"
	"context"
	"encoding/base64"
	"errors"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
)

// Server serves the sketch store over TCP with a line-oriented protocol.
// Commands (case-insensitive verbs, space-separated tokens; elements must
// not contain whitespace):
//
//	PFADD key element [element ...]   → :1 if the state changed, :0 if not
//	PFCOUNT key [key ...]             → :<rounded union distinct count>
//	PFMERGE dest src [src ...]        → +OK
//	DEL key                           → :1 if the key existed, :0 if not
//	KEYS                              → +<space-separated sorted keys>
//	INFO key                          → +t=.. d=.. p=.. bytes=.. estimate=..
//	DUMP key                          → =<base64 of the serialized sketch>
//	RESTORE key <base64>              → +OK
//	SAVE                              → +OK (snapshot to the configured path)
//	PING                              → +PONG
//	QUIT                              → +BYE and the connection closes
//
// Errors are reported as "-ERR <message>".
type Server struct {
	store        *Store
	snapshotPath string
	handlers     map[string]Handler

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// Handler processes one command line (the verb's arguments, already
// tokenized) and returns the full reply including its type sigil, e.g.
// "+OK", ":1" or "-ERR ...".
type Handler func(args []string) (reply string)

// NewServer returns a server wrapping the given store.
func NewServer(store *Store) *Server {
	return &Server{store: store, conns: make(map[net.Conn]struct{}), handlers: make(map[string]Handler)}
}

// SetSnapshotPath enables the SAVE command, writing snapshots to path.
// Call before Listen.
func (s *Server) SetSnapshotPath(path string) { s.snapshotPath = path }

// Store returns the store this server serves.
func (s *Server) Store() *Store { return s.store }

// Handle registers a handler for verb (case-insensitive), taking
// precedence over the built-in command of the same name. This is the
// extension point the cluster package uses to layer CLUSTER verbs — and
// cluster-wide PFADD/PFCOUNT semantics — onto the line protocol. Call
// before Listen; Handle is not safe to call concurrently with serving.
func (s *Server) Handle(verb string, h Handler) {
	s.handlers[strings.ToUpper(verb)] = h
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:7700";
// port 0 picks a free port). It returns once the listener is bound; use
// Addr for the chosen address and Close to shut down.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already closed")
	}
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the bound listener address ("" before Listen).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Close stops the listener, closes all connections and waits for the
// connection handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// maxLineBytes caps one protocol line (RESTORE payloads are the big
// ones); a connection sending a longer line is dropped.
const maxLineBytes = 16 * 1024 * 1024

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReaderSize(conn, 64*1024)
	cc := &connCtx{s: s, w: bufio.NewWriterSize(conn, 64*1024)}
	var long []byte // spillover for lines longer than the reader buffer
	for {
		line, err := r.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			long = append(long[:0], line...)
			for err == bufio.ErrBufferFull {
				line, err = r.ReadSlice('\n')
				if len(long)+len(line) > maxLineBytes {
					return // oversized line: drop the connection
				}
				long = append(long, line...)
			}
			line = long
		}
		if err != nil && err != io.EOF {
			return
		}
		atEOF := err == io.EOF
		quit := cc.exec(line)
		// Coalesced flush: only flush when no further request is
		// already buffered, so a pipelining client pays one write
		// syscall per burst instead of one per command.
		if quit || atEOF || r.Buffered() == 0 {
			if cc.w.Flush() != nil || quit || atEOF {
				return
			}
		}
	}
}

// connCtx is the per-connection dispatch state: the buffered writer the
// replies coalesce into, plus reusable token and integer scratch
// buffers that make the PFADD/PFCOUNT fast path allocation-free.
type connCtx struct {
	s    *Server
	w    *bufio.Writer
	args [][]byte
	num  []byte
}

func isLineSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\r' || b == '\n'
}

// tokenize splits line into whitespace-separated tokens in place,
// reusing c.args. The returned subslices alias line.
func (c *connCtx) tokenize(line []byte) [][]byte {
	args := c.args[:0]
	for i := 0; i < len(line); {
		for i < len(line) && isLineSpace(line[i]) {
			i++
		}
		start := i
		for i < len(line) && !isLineSpace(line[i]) {
			i++
		}
		if i > start {
			args = append(args, line[start:i])
		}
	}
	c.args = args
	return args
}

// upperInPlace ASCII-uppercases b (verbs are ASCII; other bytes pass
// through and simply fail the verb match).
func upperInPlace(b []byte) {
	for i, ch := range b {
		if 'a' <= ch && ch <= 'z' {
			b[i] = ch - 'a' + 'A'
		}
	}
}

func (c *connCtx) writeRaw(reply string) {
	c.w.WriteString(reply)
	c.w.WriteByte('\n')
}

func (c *connCtx) writeInt(v int64) {
	c.num = strconv.AppendInt(append(c.num[:0], ':'), v, 10)
	c.w.Write(c.num)
	c.w.WriteByte('\n')
}

func stringArgs(args [][]byte) []string {
	out := make([]string, len(args))
	for i, a := range args {
		out[i] = string(a)
	}
	return out
}

// exec runs one command line, writing the reply into c.w, and reports
// whether the connection should close. PFADD and PFCOUNT are handled
// on an allocation-free fast path (tokens stay []byte end to end,
// integer replies are appended to a reusable scratch buffer); all
// other verbs — and any verb a Handler overrides — materialize string
// arguments and take the regular dispatch path.
func (c *connCtx) exec(line []byte) (quit bool) {
	args := c.tokenize(line)
	if len(args) == 0 {
		return false // blank line: ignored, no reply
	}
	verb := args[0]
	upperInPlace(verb)
	if len(c.s.handlers) != 0 {
		if h, ok := c.s.handlers[string(verb)]; ok {
			c.writeRaw(h(stringArgs(args[1:])))
			return false
		}
	}
	switch string(verb) { // compiles without allocating the string
	case "PFADD":
		if len(args) < 3 {
			c.writeRaw("-ERR PFADD needs a key and at least one element")
			return false
		}
		if c.s.store.AddBytes(args[1], args[2:]) {
			c.writeRaw(":1")
		} else {
			c.writeRaw(":0")
		}
		return false
	case "PFCOUNT":
		if len(args) < 2 {
			c.writeRaw("-ERR PFCOUNT needs at least one key")
			return false
		}
		n, err := c.s.store.CountBytes(args[1:])
		if err != nil {
			c.writeRaw("-ERR " + err.Error())
			return false
		}
		c.writeInt(int64(n + 0.5))
		return false
	}
	reply, quit := c.s.dispatch(string(verb), stringArgs(args[1:]))
	c.writeRaw(reply)
	return quit
}

// dispatch executes one already-tokenized command (verb upper-cased)
// and returns the reply (without newline) and whether the connection
// should close. PFADD and PFCOUNT never reach it: connCtx.exec, its
// only caller, fully handles them on the allocation-free fast path.
func (s *Server) dispatch(verb string, args []string) (reply string, quit bool) {
	switch verb {
	case "PFMERGE":
		if len(args) < 2 {
			return "-ERR PFMERGE needs a destination and at least one source", false
		}
		if err := s.store.Merge(args[0], args[1:]...); err != nil {
			return "-ERR " + err.Error(), false
		}
		return "+OK", false
	case "DEL":
		if len(args) != 1 {
			return "-ERR DEL needs exactly one key", false
		}
		if s.store.Delete(args[0]) {
			return ":1", false
		}
		return ":0", false
	case "KEYS":
		return "+" + strings.Join(s.store.Keys(), " "), false
	case "INFO":
		if len(args) != 1 {
			return "-ERR INFO needs exactly one key", false
		}
		info, ok := s.store.Info(args[0])
		if !ok {
			return "-ERR no such key", false
		}
		return "+" + info, false
	case "DUMP":
		if len(args) != 1 {
			return "-ERR DUMP needs exactly one key", false
		}
		data, ok := s.store.Dump(args[0])
		if !ok {
			return "-ERR no such key", false
		}
		return "=" + base64.StdEncoding.EncodeToString(data), false
	case "RESTORE":
		if len(args) != 2 {
			return "-ERR RESTORE needs a key and a base64 payload", false
		}
		data, err := base64.StdEncoding.DecodeString(args[1])
		if err != nil {
			return "-ERR bad base64: " + err.Error(), false
		}
		if err := s.store.Restore(args[0], data); err != nil {
			return "-ERR " + err.Error(), false
		}
		return "+OK", false
	case "SAVE":
		if s.snapshotPath == "" {
			return "-ERR no snapshot path configured", false
		}
		if err := s.store.SaveFile(s.snapshotPath); err != nil {
			return "-ERR " + err.Error(), false
		}
		return "+OK", false
	case "PING":
		return "+PONG", false
	case "QUIT":
		return "+BYE", true
	default:
		return "-ERR unknown command " + verb, false
	}
}

// Serve is a convenience for binaries: listen on addr and block until ctx
// is cancelled, then shut down.
func (s *Server) Serve(ctx context.Context, addr string) error {
	if err := s.Listen(addr); err != nil {
		return err
	}
	<-ctx.Done()
	return s.Close()
}
