package server

import (
	"bufio"
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
)

// Server serves the sketch store over TCP with a line-oriented protocol.
// Commands (case-insensitive verbs, space-separated tokens; elements must
// not contain whitespace):
//
//	PFADD key element [element ...]   → :1 if the state changed, :0 if not
//	PFCOUNT key [key ...]             → :<rounded union distinct count>
//	PFMERGE dest src [src ...]        → +OK
//	DEL key                           → :1 if the key existed, :0 if not
//	KEYS                              → +<space-separated sorted keys>
//	INFO key                          → +t=.. d=.. p=.. bytes=.. estimate=..
//	DUMP key                          → =<base64 of the serialized sketch>
//	RESTORE key <base64>              → +OK
//	SAVE                              → +OK (snapshot to the configured path)
//	PING                              → +PONG
//	QUIT                              → +BYE and the connection closes
//
// Errors are reported as "-ERR <message>".
type Server struct {
	store        *Store
	snapshotPath string
	handlers     map[string]Handler

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// Handler processes one command line (the verb's arguments, already
// tokenized) and returns the full reply including its type sigil, e.g.
// "+OK", ":1" or "-ERR ...".
type Handler func(args []string) (reply string)

// NewServer returns a server wrapping the given store.
func NewServer(store *Store) *Server {
	return &Server{store: store, conns: make(map[net.Conn]struct{}), handlers: make(map[string]Handler)}
}

// SetSnapshotPath enables the SAVE command, writing snapshots to path.
// Call before Listen.
func (s *Server) SetSnapshotPath(path string) { s.snapshotPath = path }

// Store returns the store this server serves.
func (s *Server) Store() *Store { return s.store }

// Handle registers a handler for verb (case-insensitive), taking
// precedence over the built-in command of the same name. This is the
// extension point the cluster package uses to layer CLUSTER verbs — and
// cluster-wide PFADD/PFCOUNT semantics — onto the line protocol. Call
// before Listen; Handle is not safe to call concurrently with serving.
func (s *Server) Handle(verb string, h Handler) {
	s.handlers[strings.ToUpper(verb)] = h
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:7700";
// port 0 picks a free port). It returns once the listener is bound; use
// Addr for the chosen address and Close to shut down.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already closed")
	}
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the bound listener address ("" before Listen).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Close stops the listener, closes all connections and waits for the
// connection handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024) // RESTORE payloads
	w := bufio.NewWriter(conn)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		reply, quit := s.dispatch(line)
		w.WriteString(reply)
		w.WriteByte('\n')
		if err := w.Flush(); err != nil || quit {
			return
		}
	}
}

// dispatch executes one command line and returns the reply (without
// newline) and whether the connection should close.
func (s *Server) dispatch(line string) (reply string, quit bool) {
	fields := strings.Fields(line)
	verb := strings.ToUpper(fields[0])
	args := fields[1:]
	if h, ok := s.handlers[verb]; ok {
		return h(args), false
	}
	switch verb {
	case "PFADD":
		if len(args) < 2 {
			return "-ERR PFADD needs a key and at least one element", false
		}
		if s.store.Add(args[0], args[1:]...) {
			return ":1", false
		}
		return ":0", false
	case "PFCOUNT":
		if len(args) < 1 {
			return "-ERR PFCOUNT needs at least one key", false
		}
		n, err := s.store.Count(args...)
		if err != nil {
			return "-ERR " + err.Error(), false
		}
		return fmt.Sprintf(":%d", int64(n+0.5)), false
	case "PFMERGE":
		if len(args) < 2 {
			return "-ERR PFMERGE needs a destination and at least one source", false
		}
		if err := s.store.Merge(args[0], args[1:]...); err != nil {
			return "-ERR " + err.Error(), false
		}
		return "+OK", false
	case "DEL":
		if len(args) != 1 {
			return "-ERR DEL needs exactly one key", false
		}
		if s.store.Delete(args[0]) {
			return ":1", false
		}
		return ":0", false
	case "KEYS":
		return "+" + strings.Join(s.store.Keys(), " "), false
	case "INFO":
		if len(args) != 1 {
			return "-ERR INFO needs exactly one key", false
		}
		info, ok := s.store.Info(args[0])
		if !ok {
			return "-ERR no such key", false
		}
		return "+" + info, false
	case "DUMP":
		if len(args) != 1 {
			return "-ERR DUMP needs exactly one key", false
		}
		data, ok := s.store.Dump(args[0])
		if !ok {
			return "-ERR no such key", false
		}
		return "=" + base64.StdEncoding.EncodeToString(data), false
	case "RESTORE":
		if len(args) != 2 {
			return "-ERR RESTORE needs a key and a base64 payload", false
		}
		data, err := base64.StdEncoding.DecodeString(args[1])
		if err != nil {
			return "-ERR bad base64: " + err.Error(), false
		}
		if err := s.store.Restore(args[0], data); err != nil {
			return "-ERR " + err.Error(), false
		}
		return "+OK", false
	case "SAVE":
		if s.snapshotPath == "" {
			return "-ERR no snapshot path configured", false
		}
		if err := s.store.SaveFile(s.snapshotPath); err != nil {
			return "-ERR " + err.Error(), false
		}
		return "+OK", false
	case "PING":
		return "+PONG", false
	case "QUIT":
		return "+BYE", true
	default:
		return "-ERR unknown command " + verb, false
	}
}

// Serve is a convenience for binaries: listen on addr and block until ctx
// is cancelled, then shut down.
func (s *Server) Serve(ctx context.Context, addr string) error {
	if err := s.Listen(addr); err != nil {
		return err
	}
	<-ctx.Done()
	return s.Close()
}
