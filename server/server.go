package server

import (
	"bufio"
	"context"
	"encoding/base64"
	"errors"
	"io"
	"math"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"exaloglog/internal/compress"
)

// Server serves the sketch store over TCP with a line-oriented protocol.
// Commands (case-insensitive verbs, space-separated tokens; elements must
// not contain whitespace):
//
//	PFADD key element [element ...]   → :1 if the state changed, :0 if not
//	PFCOUNT key [key ...]             → :<rounded union distinct count>
//	PFMERGE dest src [src ...]        → +OK
//	WADD key ts element [element ...] → :<accepted> (ts in unix milliseconds;
//	                                    elements older than the ring span are
//	                                    dropped and counted, see WINFO)
//	WCOUNT key window [ts]            → :<rounded distinct count over the
//	                                    window ending at ts (default: the
//	                                    key's newest observed timestamp)>;
//	                                    window is a Go duration, e.g. 30s
//	WINFO key                         → +slice=.. slices=.. span=.. latest=..
//	                                    dropped=.. bytes=.. estimate=..
//	DEL key                           → :1 if the key existed, :0 if not
//	KEYS                              → +<space-separated sorted keys>
//	INFO key                          → +<value-typed description>
//	DUMP key                          → =<base64 of the serialized value>
//	DUMPZ key                         → =<base64 of the codec-compressed value>
//	RESTORE key <base64>              → +OK
//	SAVE                              → +OK (snapshot to the configured path)
//	PING                              → +PONG
//	QUIT                              → +BYE and the connection closes
//
// Errors are reported as "-ERR <message>"; a typed-verb/value mismatch
// (e.g. PFCOUNT on a windowed key) mentions WRONGTYPE in the message.
//
// Dispatch is table-driven: every verb — built-in or registered through
// Handle — lives in one command registry entry carrying its arity check
// and handler, plus an optional allocation-free fast path for the hot
// verbs (PFADD, PFCOUNT, WADD). Adding a workload's verbs means
// registering entries, not growing a switch.
type Server struct {
	store        *Store
	snapshotPath string
	commands     map[string]*command
	stats        *Stats

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// Handler processes one command line (the verb's arguments, already
// tokenized) and returns the full reply including its type sigil, e.g.
// "+OK", ":1" or "-ERR ...".
type Handler func(args []string) (reply string)

// command is one registry entry: arity bounds (arguments after the
// verb; max < 0 means unbounded), the arity-failure reply, the regular
// string-args handler, and — for hot verbs — a fast handler that works
// on the in-place byte tokens and writes its own reply, allocating
// nothing.
type command struct {
	min, max int
	usage    string
	run      func(s *Server, args []string) (reply string, quit bool)
	fast     func(c *connCtx, args [][]byte)
	stats    *VerbStats // the verb's counter block, cached at register time
}

// register installs cmd under the (upper-case) verb name, replacing any
// existing entry. The verb's stats block is resolved here, once, so
// dispatch records metrics through a cached pointer — no map lookup, no
// lock, no allocation on the hot path. A re-registered verb (Handle
// overriding a builtin) keeps accumulating into the same block.
func (s *Server) register(verb string, cmd *command) {
	verb = strings.ToUpper(verb)
	cmd.stats = s.stats.verbFor(verb)
	s.commands[verb] = cmd
}

// NewServer returns a server wrapping the given store.
func NewServer(store *Store) *Server {
	s := &Server{store: store, conns: make(map[net.Conn]struct{}), commands: make(map[string]*command), stats: newStats()}
	s.registerBuiltins()
	return s
}

// Stats returns the server's runtime statistics core.
func (s *Server) Stats() *Stats { return s.stats }

// StatsText renders the STATS reply body (see Stats.Text).
func (s *Server) StatsText() string { return s.stats.Text(s.store) }

// WriteMetrics writes the server's statistics in Prometheus text
// exposition format — the payload behind elld's -metrics-addr listener.
func (s *Server) WriteMetrics(w io.Writer) { s.stats.WriteMetrics(w, s.store) }

// SetSnapshotPath enables the SAVE command, writing snapshots to path.
// Call before Listen.
func (s *Server) SetSnapshotPath(path string) { s.snapshotPath = path }

// Store returns the store this server serves.
func (s *Server) Store() *Store { return s.store }

// Handle registers a handler for verb (case-insensitive), taking
// precedence over the built-in command of the same name — including its
// fast path; an overridden verb always sees string arguments. This is
// the extension point the cluster package uses to layer CLUSTER verbs —
// and cluster-wide PFADD/PFCOUNT/WADD/WCOUNT semantics — onto the line
// protocol. Call before Listen; Handle is not safe to call concurrently
// with serving.
func (s *Server) Handle(verb string, h Handler) {
	s.register(verb, &command{
		max: -1,
		run: func(_ *Server, args []string) (string, bool) { return h(args), false },
	})
}

// registerBuiltins fills the command registry with the built-in verbs.
func (s *Server) registerBuiltins() {
	s.register("PFADD", &command{
		min: 2, max: -1,
		usage: "-ERR PFADD needs a key and at least one element",
		fast:  fastPFAdd,
		run: func(s *Server, args []string) (string, bool) {
			changed, err := s.store.Add(args[0], args[1:]...)
			if err != nil {
				return "-ERR " + err.Error(), false
			}
			return boolReply(changed), false
		},
	})
	s.register("PFCOUNT", &command{
		min: 1, max: -1,
		usage: "-ERR PFCOUNT needs at least one key",
		fast:  fastPFCount,
		run: func(s *Server, args []string) (string, bool) {
			n, err := s.store.Count(args...)
			if err != nil {
				return "-ERR " + err.Error(), false
			}
			return ":" + strconv.FormatInt(int64(n+0.5), 10), false
		},
	})
	s.register("WADD", &command{
		min: 3, max: -1,
		usage: "-ERR WADD needs a key, a unix-millisecond timestamp and at least one element",
		fast:  fastWAdd,
		run: func(s *Server, args []string) (string, bool) {
			ts, err := strconv.ParseInt(args[1], 10, 64)
			if err != nil {
				return "-ERR WADD timestamp must be an integer (unix milliseconds)", false
			}
			n, err := s.store.WindowAdd(args[0], time.UnixMilli(ts), args[2:]...)
			if err != nil {
				return "-ERR " + err.Error(), false
			}
			return ":" + strconv.Itoa(n), false
		},
	})
	s.register("WCOUNT", &command{
		min: 2, max: 3,
		usage: "-ERR WCOUNT needs a key and a window duration (plus an optional unix-millisecond timestamp)",
		run: func(s *Server, args []string) (string, bool) {
			win, err := time.ParseDuration(args[1])
			if err != nil || win <= 0 {
				return "-ERR WCOUNT window must be a positive duration like 30s or 5m", false
			}
			var now time.Time
			if len(args) == 3 {
				ts, err := strconv.ParseInt(args[2], 10, 64)
				if err != nil {
					return "-ERR WCOUNT timestamp must be an integer (unix milliseconds)", false
				}
				now = time.UnixMilli(ts)
			}
			n, err := s.store.WindowCount(args[0], win, now)
			if err != nil {
				return "-ERR " + err.Error(), false
			}
			return ":" + strconv.FormatInt(int64(n+0.5), 10), false
		},
	})
	s.register("WINFO", &command{
		min: 1, max: 1,
		usage: "-ERR WINFO needs exactly one key",
		run: func(s *Server, args []string) (string, bool) {
			info, ok, err := s.store.WindowInfo(args[0])
			if err != nil {
				return "-ERR " + err.Error(), false
			}
			if !ok {
				return "-ERR no such key", false
			}
			return "+" + info, false
		},
	})
	s.register("PFMERGE", &command{
		min: 2, max: -1,
		usage: "-ERR PFMERGE needs a destination and at least one source",
		run: func(s *Server, args []string) (string, bool) {
			if err := s.store.Merge(args[0], args[1:]...); err != nil {
				return "-ERR " + err.Error(), false
			}
			return "+OK", false
		},
	})
	s.register("DEL", &command{
		min: 1, max: 1,
		usage: "-ERR DEL needs exactly one key",
		run: func(s *Server, args []string) (string, bool) {
			return boolReply(s.store.Delete(args[0])), false
		},
	})
	s.register("EXPIRE", &command{
		min: 2, max: 2,
		usage: "-ERR EXPIRE needs a key and a TTL in seconds",
		run: func(s *Server, args []string) (string, bool) {
			secs, err := strconv.ParseInt(args[1], 10, 64)
			if err != nil || secs <= 0 || secs > MaxTTLMillis/1000 {
				return "-ERR EXPIRE seconds must be a positive integer", false
			}
			return boolReply(s.store.ExpireAt(args[0], s.store.NowMillis()+secs*1000)), false
		},
	})
	s.register("PEXPIRE", &command{
		min: 2, max: 2,
		usage: "-ERR PEXPIRE needs a key and a TTL in milliseconds",
		run: func(s *Server, args []string) (string, bool) {
			ms, err := strconv.ParseInt(args[1], 10, 64)
			if err != nil || ms <= 0 || ms > MaxTTLMillis {
				return "-ERR PEXPIRE milliseconds must be a positive integer", false
			}
			return boolReply(s.store.ExpireAt(args[0], s.store.NowMillis()+ms)), false
		},
	})
	s.register("TTL", &command{
		min: 1, max: 1,
		usage: "-ERR TTL needs exactly one key",
		run: func(s *Server, args []string) (string, bool) {
			dl, ok := s.store.DeadlineOf(args[0])
			return TTLReply(dl, ok, s.store.NowMillis()), false
		},
	})
	s.register("PERSIST", &command{
		min: 1, max: 1,
		usage: "-ERR PERSIST needs exactly one key",
		run: func(s *Server, args []string) (string, bool) {
			return boolReply(s.store.Persist(args[0])), false
		},
	})
	s.register("KEYS", &command{
		max: -1,
		run: func(s *Server, args []string) (string, bool) {
			return "+" + strings.Join(s.store.Keys(), " "), false
		},
	})
	s.register("INFO", &command{
		min: 1, max: 1,
		usage: "-ERR INFO needs exactly one key",
		run: func(s *Server, args []string) (string, bool) {
			info, ok := s.store.Info(args[0])
			if !ok {
				return "-ERR no such key", false
			}
			return "+" + info, false
		},
	})
	s.register("DUMP", &command{
		min: 1, max: 1,
		usage: "-ERR DUMP needs exactly one key",
		run: func(s *Server, args []string) (string, bool) {
			data, ok := s.store.Dump(args[0])
			if !ok {
				return "-ERR no such key", false
			}
			return "=" + base64.StdEncoding.EncodeToString(data), false
		},
	})
	s.register("DUMPZ", &command{
		min: 1, max: 1,
		usage: "-ERR DUMPZ needs exactly one key",
		run: func(s *Server, args []string) (string, bool) {
			data, ok := s.store.Dump(args[0])
			if !ok {
				return "-ERR no such key", false
			}
			return "=" + base64.StdEncoding.EncodeToString(compress.EncodeBlob(data)), false
		},
	})
	s.register("RESTORE", &command{
		min: 2, max: 2,
		usage: "-ERR RESTORE needs a key and a base64 payload",
		run: func(s *Server, args []string) (string, bool) {
			data, err := base64.StdEncoding.DecodeString(args[1])
			if err != nil {
				return "-ERR bad base64: " + err.Error(), false
			}
			if err := s.store.Restore(args[0], data); err != nil {
				return "-ERR " + err.Error(), false
			}
			return "+OK", false
		},
	})
	s.register("SAVE", &command{
		max: -1,
		run: func(s *Server, args []string) (string, bool) {
			if s.snapshotPath == "" {
				return "-ERR no snapshot path configured", false
			}
			if err := s.store.SaveFile(s.snapshotPath); err != nil {
				return "-ERR " + err.Error(), false
			}
			return "+OK", false
		},
	})
	s.register("STATS", &command{
		max:   1,
		usage: "-ERR STATS takes at most one argument: RESET",
		run: func(s *Server, args []string) (string, bool) {
			if len(args) == 1 {
				if !strings.EqualFold(args[0], "RESET") {
					return "-ERR STATS takes at most one argument: RESET", false
				}
				s.stats.Reset()
				return "+OK", false
			}
			return "+" + s.stats.Text(s.store), false
		},
	})
	s.register("PING", &command{
		max: -1,
		run: func(s *Server, args []string) (string, bool) { return "+PONG", false },
	})
	s.register("QUIT", &command{
		max: -1,
		run: func(s *Server, args []string) (string, bool) { return "+BYE", true },
	})
}

func boolReply(v bool) string {
	if v {
		return ":1"
	}
	return ":0"
}

// TTLReply renders the Redis-convention TTL reply from a key's
// absolute deadline: :-2 missing key, :-1 no deadline, else the
// remaining whole seconds rounded up. Exported because the cluster
// layer reuses it after gathering deadlines from the owners.
func TTLReply(deadlineMillis int64, ok bool, nowMillis int64) string {
	if !ok {
		return ":-2"
	}
	if deadlineMillis == 0 {
		return ":-1"
	}
	remaining := deadlineMillis - nowMillis
	if remaining <= 0 {
		return ":-2" // due but not yet collected: already missing
	}
	return ":" + strconv.FormatInt((remaining+999)/1000, 10)
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:7700";
// port 0 picks a free port). It returns once the listener is bound; use
// Addr for the chosen address and Close to shut down.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already closed")
	}
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the bound listener address ("" before Listen).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Close stops the listener, closes all connections and waits for the
// connection handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.stats.connsCur.Add(1)
		s.stats.connsTotal.Add(1)
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// maxLineBytes caps one protocol line (RESTORE payloads are the big
// ones); a connection sending a longer line is dropped.
const maxLineBytes = 16 * 1024 * 1024

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.stats.connsCur.Add(-1)
	}()
	r := bufio.NewReaderSize(conn, 64*1024)
	cc := &connCtx{s: s, w: bufio.NewWriterSize(conn, 64*1024)}
	var long []byte // spillover for lines longer than the reader buffer
	for {
		line, err := r.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			long = append(long[:0], line...)
			for err == bufio.ErrBufferFull {
				line, err = r.ReadSlice('\n')
				if len(long)+len(line) > maxLineBytes {
					return // oversized line: drop the connection
				}
				long = append(long, line...)
			}
			line = long
		}
		if err != nil && err != io.EOF {
			return
		}
		atEOF := err == io.EOF
		quit := cc.exec(line)
		// Coalesced flush: only flush when no further request is
		// already buffered, so a pipelining client pays one write
		// syscall per burst instead of one per command.
		if quit || atEOF || r.Buffered() == 0 {
			if cc.w.Flush() != nil || quit || atEOF {
				return
			}
		}
	}
}

// connCtx is the per-connection dispatch state: the buffered writer the
// replies coalesce into, plus reusable token and integer scratch
// buffers that make the PFADD/PFCOUNT/WADD fast paths allocation-free.
type connCtx struct {
	s    *Server
	w    *bufio.Writer
	args [][]byte
	num  []byte

	// Per-command reply accounting, reset by exec before dispatch and
	// read back into the verb's stats block afterwards: writeRaw and
	// writeInt bump outBytes, and writeRaw flags an "-ERR ..." reply.
	outBytes int
	wroteErr bool
}

func isLineSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\r' || b == '\n'
}

// tokenize splits line into whitespace-separated tokens in place,
// reusing c.args. The returned subslices alias line.
func (c *connCtx) tokenize(line []byte) [][]byte {
	args := c.args[:0]
	for i := 0; i < len(line); {
		for i < len(line) && isLineSpace(line[i]) {
			i++
		}
		start := i
		for i < len(line) && !isLineSpace(line[i]) {
			i++
		}
		if i > start {
			args = append(args, line[start:i])
		}
	}
	c.args = args
	return args
}

// upperInPlace ASCII-uppercases b (verbs are ASCII; other bytes pass
// through and simply fail the verb match).
func upperInPlace(b []byte) {
	for i, ch := range b {
		if 'a' <= ch && ch <= 'z' {
			b[i] = ch - 'a' + 'A'
		}
	}
}

func (c *connCtx) writeRaw(reply string) {
	// One reply is one line — that IS the protocol. An embedded newline
	// (e.g. an errors.Join of several owners' failures bubbling into an
	// "-ERR ..." reply) would split into two wire lines and desynchronize
	// every pipelining client, so fold it here, centrally. The scan is
	// free on the clean path (no allocation unless a newline exists).
	if strings.ContainsAny(reply, "\r\n") {
		reply = strings.NewReplacer("\r\n", "; ", "\n", "; ", "\r", "; ").Replace(reply)
	}
	if len(reply) > 0 && reply[0] == '-' {
		c.wroteErr = true
	}
	c.outBytes += len(reply) + 1
	c.w.WriteString(reply)
	c.w.WriteByte('\n')
}

func (c *connCtx) writeInt(v int64) {
	c.num = strconv.AppendInt(append(c.num[:0], ':'), v, 10)
	c.outBytes += len(c.num) + 1
	c.w.Write(c.num)
	c.w.WriteByte('\n')
}

func stringArgs(args [][]byte) []string {
	out := make([]string, len(args))
	for i, a := range args {
		out[i] = string(a)
	}
	return out
}

// parseIntBytes parses a signed decimal int64 from b without
// allocating — the fast paths' strconv.ParseInt.
func parseIntBytes(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	if b[0] == '-' || b[0] == '+' {
		neg = b[0] == '-'
		if i++; i == len(b) {
			return 0, false
		}
	}
	var v int64
	for ; i < len(b); i++ {
		d := b[i] - '0'
		if d > 9 {
			return 0, false
		}
		if v > (math.MaxInt64-int64(d))/10 {
			return 0, false
		}
		v = v*10 + int64(d)
	}
	if neg {
		v = -v
	}
	return v, true
}

// exec runs one command line, writing the reply into c.w, and reports
// whether the connection should close. The verb is resolved through
// the command registry exactly once: entries with a fast handler
// (PFADD, PFCOUNT, WADD — unless overridden) run on the
// allocation-free path where tokens stay []byte end to end and integer
// replies are appended to a reusable scratch buffer; all other entries
// materialize string arguments for their regular handler.
func (c *connCtx) exec(line []byte) (quit bool) {
	args := c.tokenize(line)
	if len(args) == 0 {
		return false // blank line: ignored, no reply
	}
	start := time.Now()
	c.outBytes, c.wroteErr = 0, false
	verb := args[0]
	upperInPlace(verb)
	cmd, ok := c.s.commands[string(verb)] // compiles without allocating the string
	if !ok {
		c.writeRaw("-ERR unknown command " + string(verb))
		c.s.stats.unknown.record(len(line), c.outBytes, c.wroteErr, time.Since(start))
		return false
	}
	n := len(args) - 1
	if n < cmd.min || (cmd.max >= 0 && n > cmd.max) {
		c.writeRaw(cmd.usage)
		cmd.stats.record(len(line), c.outBytes, c.wroteErr, time.Since(start))
		return false
	}
	if cmd.fast != nil {
		cmd.fast(c, args[1:])
		cmd.stats.record(len(line), c.outBytes, c.wroteErr, time.Since(start))
		return false
	}
	reply, quit := cmd.run(c.s, stringArgs(args[1:]))
	c.writeRaw(reply)
	cmd.stats.record(len(line), c.outBytes, c.wroteErr, time.Since(start))
	return quit
}

// --- fast-path handlers ------------------------------------------------

func fastPFAdd(c *connCtx, args [][]byte) {
	changed, err := c.s.store.AddBytes(args[0], args[1:])
	if err != nil {
		c.writeRaw("-ERR " + err.Error())
		return
	}
	if changed {
		c.writeRaw(":1")
	} else {
		c.writeRaw(":0")
	}
}

func fastPFCount(c *connCtx, args [][]byte) {
	n, err := c.s.store.CountBytes(args)
	if err != nil {
		c.writeRaw("-ERR " + err.Error())
		return
	}
	c.writeInt(int64(n + 0.5))
}

func fastWAdd(c *connCtx, args [][]byte) {
	ts, ok := parseIntBytes(args[1])
	if !ok {
		c.writeRaw("-ERR WADD timestamp must be an integer (unix milliseconds)")
		return
	}
	n, err := c.s.store.WindowAddBytes(args[0], ts, args[2:])
	if err != nil {
		c.writeRaw("-ERR " + err.Error())
		return
	}
	c.writeInt(int64(n))
}

// Serve is a convenience for binaries: listen on addr and block until ctx
// is cancelled, then shut down.
func (s *Server) Serve(ctx context.Context, addr string) error {
	if err := s.Listen(addr); err != nil {
		return err
	}
	<-ctx.Done()
	return s.Close()
}
