package server

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"exaloglog/internal/core"
)

func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	store, err := NewStore(core.RecommendedML(12))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func TestPingAndUnknown(t *testing.T) {
	_, c := startServer(t)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do("BOGUS"); err == nil {
		t.Error("unknown command accepted")
	}
}

func TestPFAddCount(t *testing.T) {
	_, c := startServer(t)
	changed, err := c.PFAdd("visits", "alice", "bob", "carol")
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Error("first PFADD reported no change")
	}
	changed, err = c.PFAdd("visits", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("duplicate PFADD reported a change")
	}
	n, err := c.PFCount("visits")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("PFCOUNT = %d, want 3", n)
	}
}

func TestPFCountAccuracy(t *testing.T) {
	_, c := startServer(t)
	const n = 20000
	batch := make([]string, 0, 500)
	for i := 0; i < n; i++ {
		batch = append(batch, fmt.Sprintf("user-%d", i))
		if len(batch) == 500 {
			if _, err := c.PFAdd("big", batch...); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	got, err := c.PFCount("big")
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(float64(got)-n) / n; rel > 0.05 {
		t.Errorf("PFCOUNT = %d, want ≈%d (err %.1f%%)", got, n, 100*rel)
	}
}

func TestPFCountUnion(t *testing.T) {
	_, c := startServer(t)
	// a = {x, y}, b = {y, z}: union = 3.
	if _, err := c.PFAdd("a", "x", "y"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PFAdd("b", "y", "z"); err != nil {
		t.Fatal(err)
	}
	n, err := c.PFCount("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("union PFCOUNT = %d, want 3", n)
	}
	// Missing keys contribute nothing.
	n, err = c.PFCount("a", "nope")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("PFCOUNT with missing key = %d, want 2", n)
	}
}

func TestPFMerge(t *testing.T) {
	_, c := startServer(t)
	if _, err := c.PFAdd("mon", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PFAdd("tue", "b", "c"); err != nil {
		t.Fatal(err)
	}
	if err := c.PFMerge("week", "mon", "tue"); err != nil {
		t.Fatal(err)
	}
	n, err := c.PFCount("week")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("merged PFCOUNT = %d, want 3", n)
	}
	// Merging into an existing destination accumulates.
	if _, err := c.PFAdd("wed", "d"); err != nil {
		t.Fatal(err)
	}
	if err := c.PFMerge("week", "wed"); err != nil {
		t.Fatal(err)
	}
	if n, _ := c.PFCount("week"); n != 4 {
		t.Errorf("accumulated PFCOUNT = %d, want 4", n)
	}
}

func TestDelKeysInfo(t *testing.T) {
	_, c := startServer(t)
	if _, err := c.PFAdd("k1", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PFAdd("k2", "b"); err != nil {
		t.Fatal(err)
	}
	keys, err := c.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "k1" || keys[1] != "k2" {
		t.Errorf("KEYS = %v", keys)
	}
	info, err := c.Do("INFO", "k1")
	if err != nil {
		t.Fatal(err)
	}
	if info == "" {
		t.Error("empty INFO")
	}
	existed, err := c.Del("k1")
	if err != nil {
		t.Fatal(err)
	}
	if !existed {
		t.Error("DEL of existing key returned 0")
	}
	existed, err = c.Del("k1")
	if err != nil {
		t.Fatal(err)
	}
	if existed {
		t.Error("DEL of missing key returned 1")
	}
	if _, err := c.Do("INFO", "k1"); err == nil {
		t.Error("INFO of deleted key succeeded")
	}
}

func TestDumpRestore(t *testing.T) {
	_, c := startServer(t)
	if _, err := c.PFAdd("orig", "a", "b", "c", "d"); err != nil {
		t.Fatal(err)
	}
	data, err := c.Dump("orig")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Restore("copy", data); err != nil {
		t.Fatal(err)
	}
	nOrig, _ := c.PFCount("orig")
	nCopy, _ := c.PFCount("copy")
	if nOrig != nCopy {
		t.Errorf("restored count %d != original %d", nCopy, nOrig)
	}
	if _, err := c.Dump("missing"); err == nil {
		t.Error("DUMP of missing key succeeded")
	}
	if err := c.Restore("bad", []byte("garbage")); err == nil {
		t.Error("RESTORE of garbage succeeded")
	}
}

func TestArgumentErrors(t *testing.T) {
	_, c := startServer(t)
	for _, cmd := range [][]string{
		{"PFADD", "key"},
		{"PFCOUNT"},
		{"PFMERGE", "dest"},
		{"DEL"},
		{"DEL", "a", "b"},
		{"INFO"},
		{"DUMP"},
		{"RESTORE", "key"},
		{"RESTORE", "key", "!!notbase64!!"},
	} {
		if _, err := c.Do(cmd...); err == nil {
			t.Errorf("command %v accepted", cmd)
		}
	}
}

// TestConcurrentClients exercises the store's locking: many clients adding
// to the same and different keys simultaneously.
func TestConcurrentClients(t *testing.T) {
	srv, _ := startServer(t)
	const (
		clients = 8
		perC    = 2000
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < perC; i += 100 {
				batch := make([]string, 0, 100)
				for j := 0; j < 100; j++ {
					batch = append(batch, fmt.Sprintf("c%d-e%d", ci, i+j))
				}
				if _, err := c.PFAdd("shared", batch...); err != nil {
					errs <- err
					return
				}
				if _, err := c.PFAdd(fmt.Sprintf("own-%d", ci), batch...); err != nil {
					errs <- err
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	want := float64(clients * perC)
	got, err := c.PFCount("shared")
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(float64(got)-want) / want; rel > 0.05 {
		t.Errorf("shared PFCOUNT = %d, want ≈%.0f", got, want)
	}
	// Union across per-client keys equals the shared key's content.
	keys := []string{"shared"}
	for ci := 0; ci < clients; ci++ {
		keys = append(keys, fmt.Sprintf("own-%d", ci))
	}
	gotUnion, err := c.PFCount(keys...)
	if err != nil {
		t.Fatal(err)
	}
	if gotUnion != got {
		t.Errorf("union over identical content %d != %d", gotUnion, got)
	}
}

// TestMultilineReplyIsFoldedToOneLine: one reply is one line — that is
// the protocol. A handler whose error message contains newlines (e.g.
// an errors.Join of several cluster owners' failures) must reach the
// wire as a single folded line, or every later reply on the connection
// would be off by one.
func TestMultilineReplyIsFoldedToOneLine(t *testing.T) {
	store, err := NewStore(core.RecommendedML(8))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	srv.Handle("MULTI", func(args []string) string {
		return "-ERR " + fmt.Errorf("%w", fmt.Errorf("first\nsecond\rthird")).Error()
	})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if _, err := c.Do("MULTI"); err == nil {
		t.Fatal("multiline error reply did not surface as an error")
	} else if got := err.Error(); strings.ContainsAny(got, "\r\n") || !strings.Contains(got, "; ") {
		t.Errorf("reply %q not folded to one line", got)
	}
	// The connection is still in sync: the next command sees ITS reply.
	if err := c.Ping(); err != nil {
		t.Fatalf("connection desynchronized after a multiline reply: %v", err)
	}
}

func TestQuitClosesConnection(t *testing.T) {
	_, c := startServer(t)
	reply, err := c.Do("QUIT")
	if err != nil {
		t.Fatal(err)
	}
	if reply != "BYE" {
		t.Errorf("QUIT reply %q", reply)
	}
	if _, err := c.Do("PING"); err == nil {
		t.Error("connection still alive after QUIT")
	}
}

func TestStoreValidation(t *testing.T) {
	if _, err := NewStore(core.Config{T: 99}); err == nil {
		t.Error("invalid store config accepted")
	}
}
