package server

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"exaloglog/internal/core"
)

func populatedStore(t *testing.T, keys int) *Store {
	t.Helper()
	st, err := NewStore(core.RecommendedML(8))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%d", k)
		for e := 0; e < 100*(k+1); e++ {
			st.Add(key, fmt.Sprintf("el-%d-%d", k, e))
		}
	}
	return st
}

func TestSnapshotRoundTrip(t *testing.T) {
	orig := populatedStore(t, 5)
	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := NewStore(core.RecommendedML(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != orig.Len() {
		t.Fatalf("restored %d keys, want %d", restored.Len(), orig.Len())
	}
	for _, key := range orig.Keys() {
		a, _ := orig.Count(key)
		b, _ := restored.Count(key)
		if a != b {
			t.Errorf("key %s: restored count %g != %g", key, b, a)
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	st := populatedStore(t, 3)
	var a, b bytes.Buffer
	if err := st.WriteSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("snapshots of the same store differ")
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	st, _ := NewStore(core.RecommendedML(8))
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := st.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 0 {
		t.Errorf("empty round trip has %d keys", st.Len())
	}
}

// TestSnapshotMetaRoundTrip: the opaque metadata blob (the cluster
// package keeps its membership map there) survives the snapshot cycle
// and failed loads leave it untouched.
func TestSnapshotMetaRoundTrip(t *testing.T) {
	orig := populatedStore(t, 2)
	meta := []byte("v2 7 3 n1 2 n1=a:1 n2=a:2")
	orig.SetMeta(meta)
	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, _ := NewStore(core.RecommendedML(8))
	if err := restored.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := restored.Meta(); !bytes.Equal(got, meta) {
		t.Errorf("restored meta %q, want %q", got, meta)
	}
	// Meta is a copy: mutating the returned slice cannot corrupt the store.
	restored.Meta()[0] = 'X'
	if got := restored.Meta(); !bytes.Equal(got, meta) {
		t.Error("Meta returned an aliased slice")
	}
	// A failed load leaves existing meta (and sketches) alone.
	keep, _ := NewStore(core.RecommendedML(8))
	keep.SetMeta([]byte("keep-me"))
	if err := keep.ReadSnapshot(bytes.NewReader(buf.Bytes()[:6])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if got := keep.Meta(); string(got) != "keep-me" {
		t.Errorf("failed load clobbered meta: %q", got)
	}
	// Clearing works and persists as "no meta".
	orig.SetMeta(nil)
	buf.Reset()
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := restored.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.Meta() != nil {
		t.Errorf("cleared meta came back as %q", restored.Meta())
	}
}

// TestSnapshotReadsV1: version-1 snapshots (no metadata blob) still
// load — a pre-upgrade snapshot file must not strand its node.
func TestSnapshotReadsV1(t *testing.T) {
	orig := populatedStore(t, 2)
	var v2 bytes.Buffer
	if err := orig.WriteSnapshot(&v2); err != nil {
		t.Fatal(err)
	}
	// A v2 snapshot without meta is the v1 body behind a 0-length meta
	// blob: rewrite the version byte and drop that length byte.
	data := v2.Bytes()
	v1 := append([]byte("ELSS\x01"), data[6:]...)
	restored, _ := NewStore(core.RecommendedML(8))
	if err := restored.ReadSnapshot(bytes.NewReader(v1)); err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if restored.Len() != orig.Len() {
		t.Errorf("v1 load restored %d keys, want %d", restored.Len(), orig.Len())
	}
	if restored.Meta() != nil {
		t.Errorf("v1 snapshot produced meta %q", restored.Meta())
	}
}

func TestSnapshotCorruptInputs(t *testing.T) {
	st := populatedStore(t, 2)
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	fresh, _ := NewStore(core.RecommendedML(8))
	for name, corrupt := range map[string][]byte{
		"empty":           {},
		"bad magic":       append([]byte("XXXX"), good[4:]...),
		"bad version":     append([]byte("ELSS\x09"), good[5:]...),
		"truncated":       good[:len(good)-3],
		"truncated early": good[:6],
	} {
		if err := fresh.ReadSnapshot(bytes.NewReader(corrupt)); err == nil {
			t.Errorf("%s snapshot accepted", name)
		}
		// The store must be unchanged after a failed load.
		if fresh.Len() != 0 {
			t.Fatalf("%s: failed load mutated the store", name)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.elss")
	orig := populatedStore(t, 3)
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored, _ := NewStore(core.RecommendedML(8))
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 3 {
		t.Fatalf("restored %d keys", restored.Len())
	}
	// Atomic write: no temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries after SaveFile", len(entries))
	}
	if err := restored.LoadFile(filepath.Join(dir, "missing.elss")); err == nil {
		t.Error("loading missing file succeeded")
	}
}

func TestSaveCommandOverWire(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wire.elss")
	store, err := NewStore(core.RecommendedML(10))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	srv.SetSnapshotPath(path)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.PFAdd("persisted", "a", "b", "c"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do("SAVE"); err != nil {
		t.Fatal(err)
	}
	// Simulate a restart: fresh store loads the snapshot.
	store2, _ := NewStore(core.RecommendedML(10))
	if err := store2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if n, _ := store2.Count("persisted"); n < 2.9 || n > 3.1 {
		t.Errorf("restarted count %g, want ≈3", n)
	}
}

func TestSaveWithoutPath(t *testing.T) {
	_, c := startServer(t)
	if _, err := c.Do("SAVE"); err == nil {
		t.Error("SAVE without a configured path succeeded")
	}
}
