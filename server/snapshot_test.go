package server

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"exaloglog/internal/core"
)

func populatedStore(t *testing.T, keys int) *Store {
	t.Helper()
	st, err := NewStore(core.RecommendedML(8))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%d", k)
		for e := 0; e < 100*(k+1); e++ {
			st.Add(key, fmt.Sprintf("el-%d-%d", k, e))
		}
	}
	return st
}

func TestSnapshotRoundTrip(t *testing.T) {
	orig := populatedStore(t, 5)
	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := NewStore(core.RecommendedML(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != orig.Len() {
		t.Fatalf("restored %d keys, want %d", restored.Len(), orig.Len())
	}
	for _, key := range orig.Keys() {
		a, _ := orig.Count(key)
		b, _ := restored.Count(key)
		if a != b {
			t.Errorf("key %s: restored count %g != %g", key, b, a)
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	st := populatedStore(t, 3)
	var a, b bytes.Buffer
	if err := st.WriteSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("snapshots of the same store differ")
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	st, _ := NewStore(core.RecommendedML(8))
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := st.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 0 {
		t.Errorf("empty round trip has %d keys", st.Len())
	}
}

// TestSnapshotMetaRoundTrip: the opaque metadata blob (the cluster
// package keeps its membership map there) survives the snapshot cycle
// and failed loads leave it untouched.
func TestSnapshotMetaRoundTrip(t *testing.T) {
	orig := populatedStore(t, 2)
	meta := []byte("v2 7 3 n1 2 n1=a:1 n2=a:2")
	orig.SetMeta(meta)
	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, _ := NewStore(core.RecommendedML(8))
	if err := restored.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := restored.Meta(); !bytes.Equal(got, meta) {
		t.Errorf("restored meta %q, want %q", got, meta)
	}
	// Meta is a copy: mutating the returned slice cannot corrupt the store.
	restored.Meta()[0] = 'X'
	if got := restored.Meta(); !bytes.Equal(got, meta) {
		t.Error("Meta returned an aliased slice")
	}
	// A failed load leaves existing meta (and sketches) alone.
	keep, _ := NewStore(core.RecommendedML(8))
	keep.SetMeta([]byte("keep-me"))
	if err := keep.ReadSnapshot(bytes.NewReader(buf.Bytes()[:6])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if got := keep.Meta(); string(got) != "keep-me" {
		t.Errorf("failed load clobbered meta: %q", got)
	}
	// Clearing works and persists as "no meta".
	orig.SetMeta(nil)
	buf.Reset()
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := restored.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.Meta() != nil {
		t.Errorf("cleared meta came back as %q", restored.Meta())
	}
}

// encodeLegacySnapshot renders a store's plain sketches in the exact
// byte layout old writers produced: version 1 (no metadata blob, no
// type tags) or version 2 (metadata blob, no type tags). It is the
// test's own encoder on purpose — the shipped writer only emits v3, so
// backwards readability has to be pinned against independently
// constructed bytes.
func encodeLegacySnapshot(t *testing.T, version byte, blobs map[string][]byte, meta []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString("ELSS")
	buf.WriteByte(version)
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) {
		buf.Write(scratch[:binary.PutUvarint(scratch[:], v)])
	}
	if version >= 2 {
		writeUvarint(uint64(len(meta)))
		buf.Write(meta)
	} else if len(meta) != 0 {
		t.Fatal("v1 snapshots cannot carry metadata")
	}
	keys := make([]string, 0, len(blobs))
	for k := range blobs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	writeUvarint(uint64(len(keys)))
	for _, k := range keys {
		writeUvarint(uint64(len(k)))
		buf.WriteString(k)
		writeUvarint(uint64(len(blobs[k])))
		buf.Write(blobs[k])
	}
	return buf.Bytes()
}

// TestSnapshotCrossVersion: version-1 and version-2 snapshot files (no
// per-record type tags; v1 also without the metadata blob) still load —
// a pre-upgrade snapshot must not strand its node — and a legacy store
// carried forward re-saves as version 3 with every count intact.
func TestSnapshotCrossVersion(t *testing.T) {
	orig := populatedStore(t, 3)
	meta := []byte("v2 7 3 n1 2 n1=a:1 n2=a:2")
	blobs := orig.DumpAll()

	counts := func(s *Store) map[string]float64 {
		out := make(map[string]float64)
		for _, k := range s.Keys() {
			n, err := s.Count(k)
			if err != nil {
				t.Fatal(err)
			}
			out[k] = n
		}
		return out
	}
	want := counts(orig)

	for _, tc := range []struct {
		name string
		data []byte
		meta []byte
	}{
		{"v1", encodeLegacySnapshot(t, 1, blobs, nil), nil},
		{"v2", encodeLegacySnapshot(t, 2, blobs, meta), meta},
	} {
		restored, _ := NewStore(core.RecommendedML(8))
		if err := restored.ReadSnapshot(bytes.NewReader(tc.data)); err != nil {
			t.Fatalf("%s snapshot rejected: %v", tc.name, err)
		}
		if restored.Len() != orig.Len() {
			t.Errorf("%s load restored %d keys, want %d", tc.name, restored.Len(), orig.Len())
		}
		if got := restored.Meta(); !bytes.Equal(got, tc.meta) {
			t.Errorf("%s load meta %q, want %q", tc.name, got, tc.meta)
		}
		for k, w := range want {
			if got := counts(restored)[k]; got != w {
				t.Errorf("%s load count %s = %v, want %v", tc.name, k, got, w)
			}
		}
		// Carry the legacy store forward: re-save (now v3) and load again.
		var v3 bytes.Buffer
		if err := restored.WriteSnapshot(&v3); err != nil {
			t.Fatal(err)
		}
		if got := v3.Bytes()[4]; got != snapshotVersion {
			t.Fatalf("re-save wrote version %d, want %d", got, snapshotVersion)
		}
		again, _ := NewStore(core.RecommendedML(8))
		if err := again.ReadSnapshot(&v3); err != nil {
			t.Fatalf("%s → v3 reload: %v", tc.name, err)
		}
		for k, w := range want {
			if got := counts(again)[k]; got != w {
				t.Errorf("%s → v3 reload count %s = %v, want %v", tc.name, k, got, w)
			}
		}
	}
}

// TestSnapshotV3WindowRoundTrip: snapshot v3 tags each record with its
// value type, so a store mixing plain and windowed keys round-trips
// with both workloads intact — including the windowed keys' Dropped
// statistic and per-window estimates.
func TestSnapshotV3WindowRoundTrip(t *testing.T) {
	orig := populatedStore(t, 2)
	base := time.UnixMilli(1_700_000_000_000)
	for s := 0; s < 5; s++ {
		ts := base.Add(time.Duration(s) * time.Second)
		for e := 0; e < 50; e++ {
			if _, err := orig.WindowAdd("scan:10.0.0.9", ts, fmt.Sprintf("port-%d-%d", s, e)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := orig.WindowAdd("scan:10.0.0.9", base.Add(-time.Hour), "ancient"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, _ := NewStore(core.RecommendedML(8))
	if err := restored.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != orig.Len() {
		t.Fatalf("restored %d keys, want %d", restored.Len(), orig.Len())
	}
	for _, key := range orig.Keys() {
		if key == "scan:10.0.0.9" {
			continue
		}
		a, _ := orig.Count(key)
		b, err := restored.Count(key)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("plain key %s: restored count %g != %g", key, b, a)
		}
	}
	for w := 1; w <= 5; w++ {
		win := time.Duration(w) * time.Second
		a, err := orig.WindowCount("scan:10.0.0.9", win, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.WindowCount("scan:10.0.0.9", win, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("window %v: restored estimate %g != %g", win, b, a)
		}
	}
	a, _, err := orig.WindowInfo("scan:10.0.0.9")
	if err != nil {
		t.Fatal(err)
	}
	b, ok, err := restored.WindowInfo("scan:10.0.0.9")
	if err != nil || !ok {
		t.Fatalf("restored WindowInfo: %v, ok=%v", err, ok)
	}
	if a != b {
		t.Errorf("restored window info %q != %q (Dropped or geometry lost)", b, a)
	}
	if !strings.Contains(b, "dropped=1") {
		t.Errorf("window info %q does not surface the dropped insert", b)
	}
}

// TestSnapshotV4RawBlobLoad: version-4 snapshots (per-record deadlines,
// raw uncompressed blobs — what every pre-codec build wrote) must still
// load with counts and deadlines intact. The bytes are built by the
// test's own encoder, since the shipped writer now emits v5 only.
func TestSnapshotV4RawBlobLoad(t *testing.T) {
	orig := populatedStore(t, 3)
	deadline := time.Now().Add(time.Hour).UnixMilli()
	if !orig.ExpireAt("key-1", deadline) {
		t.Fatal("fixture: ExpireAt on key-1 failed")
	}
	tagged := orig.DumpAllTagged()

	var buf bytes.Buffer
	buf.WriteString("ELSS")
	buf.WriteByte(4)
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) {
		buf.Write(scratch[:binary.PutUvarint(scratch[:], v)])
	}
	writeUvarint(0) // no metadata
	keys := make([]string, 0, len(tagged))
	for k := range tagged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	writeUvarint(uint64(len(keys)))
	for _, k := range keys {
		tb := tagged[k]
		writeUvarint(uint64(len(k)))
		buf.WriteString(k)
		buf.WriteByte(tb.Type)
		writeUvarint(uint64(tb.Deadline))
		writeUvarint(uint64(len(tb.Blob)))
		buf.Write(tb.Blob) // raw: v4 never compressed
	}

	restored, _ := NewStore(core.RecommendedML(8))
	if err := restored.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("v4 snapshot rejected: %v", err)
	}
	if restored.Len() != orig.Len() {
		t.Fatalf("v4 load restored %d keys, want %d", restored.Len(), orig.Len())
	}
	for _, k := range keys {
		a, _ := orig.Count(k)
		b, err := restored.Count(k)
		if err != nil || a != b {
			t.Errorf("v4 load count %s = %v (%v), want %v", k, b, err, a)
		}
	}
	if got, _ := restored.DeadlineOf("key-1"); got != deadline {
		t.Errorf("v4 load deadline = %d, want %d", got, deadline)
	}
}

// TestSnapshotV5CompressesSparseBlobs: the v5 writer runs blobs through
// the wire codec, so a store of near-empty sketches snapshots far
// smaller than the dense register arrays it holds in memory.
func TestSnapshotV5CompressesSparseBlobs(t *testing.T) {
	st, err := NewStore(core.RecommendedML(12))
	if err != nil {
		t.Fatal(err)
	}
	rawBytes := 0
	for k := 0; k < 50; k++ {
		key := fmt.Sprintf("sparse-%d", k)
		if _, err := st.Add(key, "one-element"); err != nil {
			t.Fatal(err)
		}
		blob, _ := st.Dump(key)
		rawBytes += len(blob)
	}
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len()*2 >= rawBytes {
		t.Errorf("v5 snapshot is %d bytes for %d raw blob bytes — expected at least a 2× reduction on sparse sketches", buf.Len(), rawBytes)
	}
	restored, _ := NewStore(core.RecommendedML(12))
	if err := restored.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != st.Len() {
		t.Fatalf("restored %d keys, want %d", restored.Len(), st.Len())
	}
}

func TestSnapshotCorruptInputs(t *testing.T) {
	st := populatedStore(t, 2)
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	fresh, _ := NewStore(core.RecommendedML(8))
	for name, corrupt := range map[string][]byte{
		"empty":           {},
		"bad magic":       append([]byte("XXXX"), good[4:]...),
		"bad version":     append([]byte("ELSS\x09"), good[5:]...),
		"truncated":       good[:len(good)-3],
		"truncated early": good[:6],
	} {
		if err := fresh.ReadSnapshot(bytes.NewReader(corrupt)); err == nil {
			t.Errorf("%s snapshot accepted", name)
		}
		// The store must be unchanged after a failed load.
		if fresh.Len() != 0 {
			t.Fatalf("%s: failed load mutated the store", name)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.elss")
	orig := populatedStore(t, 3)
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored, _ := NewStore(core.RecommendedML(8))
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 3 {
		t.Fatalf("restored %d keys", restored.Len())
	}
	// Atomic write: no temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries after SaveFile", len(entries))
	}
	if err := restored.LoadFile(filepath.Join(dir, "missing.elss")); err == nil {
		t.Error("loading missing file succeeded")
	}
}

func TestSaveCommandOverWire(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wire.elss")
	store, err := NewStore(core.RecommendedML(10))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	srv.SetSnapshotPath(path)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.PFAdd("persisted", "a", "b", "c"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do("SAVE"); err != nil {
		t.Fatal(err)
	}
	// Simulate a restart: fresh store loads the snapshot.
	store2, _ := NewStore(core.RecommendedML(10))
	if err := store2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if n, _ := store2.Count("persisted"); n < 2.9 || n > 3.1 {
		t.Errorf("restarted count %g, want ≈3", n)
	}
}

func TestSaveWithoutPath(t *testing.T) {
	_, c := startServer(t)
	if _, err := c.Do("SAVE"); err == nil {
		t.Error("SAVE without a configured path succeeded")
	}
}
