package server

// Content digests for anti-entropy: a node summarizes (key, value,
// deadline) state as 64-bit digests so replicas can detect divergence
// by exchanging O(shards) bytes instead of O(keys) blobs. Digests are
// pure functions of replicated state — the serialized value bytes and
// the absolute expiry deadline — never of local bookkeeping like entry
// version counters, so converged replicas produce identical digests no
// matter how they arrived at the state (the same order-independence
// the sketch merge itself guarantees).
//
// The per-entry blob digest is cached under the entry's version
// counter (every observable mutation bumps it), so a converged,
// idle store answers repeated digest sweeps without re-serializing
// anything; the deadline is mixed in fresh on every read because
// deadline adoption does not always bump the version.

// NumShards is the store's shard count, exported so cluster peers can
// exchange per-shard digest vectors. The shard of a key is a pure
// function of the key bytes (ShardIndex), identical on every node.
const NumShards = numShards

// ShardIndex returns the index in [0, NumShards) of the shard that
// holds key — the same value on every node for the same key.
func ShardIndex(key string) int { return shardIndex(key) }

// KeyDigest is one key's content digest, as exchanged during a digest
// anti-entropy round.
type KeyDigest struct {
	Key    string
	Digest uint64
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

// mix64 finalizes a digest with a splitmix64-style avalanche so that
// XOR-folding per-key digests over a shard doesn't cancel structured
// low-entropy bits.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// blobDigestLocked returns the digest of (key, serialized value),
// cached against the entry version; e.mu must be held.
func blobDigestLocked(key string, e *entry) (uint64, bool) {
	if e.digOK && e.digVer == e.ver {
		return e.dig, true
	}
	blob, err := e.val.MarshalBinary()
	if err != nil {
		return 0, false // unreachable: value marshaling cannot fail
	}
	h := fnvString(fnvOffset, key)
	h = (h ^ uint64(len(blob))) * fnvPrime
	h = fnvBytes(h, blob)
	e.dig, e.digVer, e.digOK = h, e.ver, true
	return h, true
}

// keyDigestLocked combines the cached blob digest with the entry's
// current deadline; e.mu must be held.
func keyDigestLocked(key string, e *entry) (uint64, bool) {
	h, ok := blobDigestLocked(key, e)
	if !ok {
		return 0, false
	}
	return mix64(h ^ mix64(uint64(e.deadline.Load()))), true
}

// ShardDigests returns one digest per shard: the XOR-fold of the
// digests of every live, unexpired key the filter accepts (a nil
// filter accepts all). Two stores whose accepted key sets hold
// byte-identical values and deadlines produce identical vectors; any
// divergence flips at least one shard with overwhelming probability.
func (s *Store) ShardDigests(filter func(key string) bool) []uint64 {
	out := make([]uint64, numShards)
	nowMs := s.NowMillis()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		keys := make([]string, 0, len(sh.m))
		entries := make([]*entry, 0, len(sh.m))
		for k, e := range sh.m {
			if filter != nil && !filter(k) {
				continue
			}
			keys = append(keys, k)
			entries = append(entries, e)
		}
		sh.mu.RUnlock()
		var fold uint64
		for j, e := range entries {
			e.mu.Lock()
			if e.dead {
				e.mu.Unlock()
				continue
			}
			if dl := e.deadline.Load(); dl != 0 && nowMs >= dl {
				e.mu.Unlock()
				continue // expired: digested as absent, collected lazily
			}
			d, ok := keyDigestLocked(keys[j], e)
			e.mu.Unlock()
			if ok {
				fold ^= d
			}
		}
		out[i] = fold
	}
	return out
}

// ShardKeyDigests returns the per-key digests of one shard (keys the
// filter rejects, expired and dead entries omitted) — the second round
// of a digest exchange, fetched only for shards whose folded digests
// disagreed.
func (s *Store) ShardKeyDigests(shard int, filter func(key string) bool) []KeyDigest {
	if shard < 0 || shard >= numShards {
		return nil
	}
	nowMs := s.NowMillis()
	sh := &s.shards[shard]
	sh.mu.RLock()
	keys := make([]string, 0, len(sh.m))
	entries := make([]*entry, 0, len(sh.m))
	for k, e := range sh.m {
		if filter != nil && !filter(k) {
			continue
		}
		keys = append(keys, k)
		entries = append(entries, e)
	}
	sh.mu.RUnlock()
	out := make([]KeyDigest, 0, len(entries))
	for j, e := range entries {
		e.mu.Lock()
		if e.dead {
			e.mu.Unlock()
			continue
		}
		if dl := e.deadline.Load(); dl != 0 && nowMs >= dl {
			e.mu.Unlock()
			continue
		}
		d, ok := keyDigestLocked(keys[j], e)
		e.mu.Unlock()
		if ok {
			out = append(out, KeyDigest{Key: keys[j], Digest: d})
		}
	}
	return out
}

// DumpTagged is Dump for a single key with the full state token —
// blob, type tag, deadline and change-detection identity — so a digest
// repair can ship exactly what DumpAllTagged would have shipped
// without serializing the whole store.
func (s *Store) DumpTagged(key string) (TaggedBlob, bool) {
	e := s.lookup(key)
	if e == nil {
		return TaggedBlob{}, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead {
		return TaggedBlob{}, false
	}
	blob, err := e.val.MarshalBinary()
	if err != nil {
		return TaggedBlob{}, false // unreachable: value marshaling cannot fail
	}
	return TaggedBlob{Blob: blob, Type: e.val.Tag(), Deadline: e.deadline.Load(), e: e, ver: e.ver}, true
}
