package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"exaloglog/internal/compress"
)

// Snapshot persistence: the whole store serializes to a compact binary
// stream — a magic header followed by (key, value-blob) records — so a
// sketch service can restart without losing its counters. Plain sketch
// blobs are the core MarshalBinary form (Section 5.3: serialization is
// a header plus the dense register array, so snapshots are cheap);
// windowed keys serialize slot-wise (see the window package).
//
// Format (version 5; versions 1–4 are still readable):
//
//	bytes 0-3  magic "ELSS"
//	byte  4    version (5)
//	uvarint    metadata length, then the opaque metadata blob
//	uvarint    number of records
//	per record:
//	  uvarint  key length, then the key bytes
//	  byte     value type tag ('E' plain sketch, 'W' window ring)
//	  uvarint  expiry deadline, unix milliseconds (0 = none)
//	  uvarint  blob length, then the value blob
//
// Version 5 runs each value blob through the wire codec
// (internal/compress EncodeBlob): sparse sketches shrink dramatically
// on disk, and because the codec passes uncompressed data through
// unchanged, a v5 record's blob may also be a raw value blob (the
// codec declined to compress). Version 4 wrote raw blobs only.
// Version 3 lacked the per-record expiry deadline (keys restore
// without a lifetime); version 2 additionally lacked the type tag
// (every value was a plain sketch); version 1 additionally lacked the
// metadata blob. The metadata blob (SetMeta/Meta) is opaque to the
// server: the cluster package stores its membership map there so a
// restarted node remembers its cluster.
const (
	snapshotMagic      = "ELSS"
	snapshotVersion    = 5
	snapshotVersionV4  = 4
	snapshotVersionV3  = 3
	snapshotVersionV2  = 2
	snapshotVersionV1  = 1
	snapshotMetaLimit  = 1 << 20
	snapshotKeyLimit   = 1 << 16
	snapshotBlobLimit  = 1 << 30
	snapshotMaxRecords = 1 << 24
)

// WriteSnapshot serializes all values to w. Keys are written in sorted
// order so snapshots of equal stores are byte-identical. Each value
// blob is internally consistent; keys mutated while the snapshot is
// being gathered may appear in either state.
func (s *Store) WriteSnapshot(w io.Writer) error {
	blobs := s.DumpAllTagged()
	meta := s.Meta()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(snapshotVersion); err != nil {
		return err
	}
	keys := make([]string, 0, len(blobs))
	for k := range blobs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(len(meta))); err != nil {
		return err
	}
	if _, err := bw.Write(meta); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(keys))); err != nil {
		return err
	}
	for _, k := range keys {
		tagged := blobs[k]
		if err := writeUvarint(uint64(len(k))); err != nil {
			return err
		}
		if _, err := bw.WriteString(k); err != nil {
			return err
		}
		if err := bw.WriteByte(tagged.Type); err != nil {
			return err
		}
		if err := writeUvarint(uint64(tagged.Deadline)); err != nil {
			return err
		}
		blob := compress.EncodeBlob(tagged.Blob)
		if err := writeUvarint(uint64(len(blob))); err != nil {
			return err
		}
		if _, err := bw.Write(blob); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSnapshot replaces the store's contents with the snapshot from r.
// On error the store is left unchanged.
func (s *Store) ReadSnapshot(r io.Reader) error {
	br := bufio.NewReader(r)
	header := make([]byte, len(snapshotMagic)+1)
	if _, err := io.ReadFull(br, header); err != nil {
		return fmt.Errorf("server: snapshot header: %w", err)
	}
	if string(header[:len(snapshotMagic)]) != snapshotMagic {
		return fmt.Errorf("server: bad snapshot magic %q", header[:len(snapshotMagic)])
	}
	version := header[len(snapshotMagic)]
	if version < snapshotVersionV1 || version > snapshotVersion {
		return fmt.Errorf("server: unsupported snapshot version %d", version)
	}
	var meta []byte
	if version >= snapshotVersionV2 {
		var err error
		if meta, err = readBlob(br, snapshotMetaLimit); err != nil {
			return fmt.Errorf("server: snapshot metadata: %w", err)
		}
		if len(meta) == 0 {
			meta = nil
		}
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("server: snapshot record count: %w", err)
	}
	if count > snapshotMaxRecords {
		return fmt.Errorf("server: snapshot claims %d records (limit %d)", count, snapshotMaxRecords)
	}
	nowMs := s.NowMillis()
	loaded := make(map[string]snapRecord, count)
	for i := uint64(0); i < count; i++ {
		key, err := readBlob(br, snapshotKeyLimit)
		if err != nil {
			return fmt.Errorf("server: snapshot record %d key: %w", i, err)
		}
		// v1/v2 records carry no type tag: every value is a plain sketch.
		tag := valueTagEll
		if version >= snapshotVersionV3 {
			if tag, err = br.ReadByte(); err != nil {
				return fmt.Errorf("server: snapshot record %d type tag: %w", i, err)
			}
		}
		// v1–v3 records carry no deadline: keys restore without one.
		var deadline int64
		if version >= snapshotVersionV4 {
			dl, err := binary.ReadUvarint(br)
			if err != nil {
				return fmt.Errorf("server: snapshot record %d deadline: %w", i, err)
			}
			if dl > uint64(MaxDeadlineMillis) {
				return fmt.Errorf("server: snapshot record %d deadline %d out of range", i, dl)
			}
			deadline = int64(dl)
		}
		blob, err := readBlob(br, snapshotBlobLimit)
		if err != nil {
			return fmt.Errorf("server: snapshot record %d blob: %w", i, err)
		}
		if version >= snapshotVersion {
			// v5 blobs ride the wire codec; raw blobs pass through.
			if blob, err = compress.DecodeBlob(blob, snapshotBlobLimit); err != nil {
				return fmt.Errorf("server: snapshot record %d blob: %w", i, err)
			}
		}
		val, err := decodeValueTagged(tag, blob)
		if err != nil {
			return fmt.Errorf("server: snapshot record %d (%q): %w", i, key, err)
		}
		if deadline != 0 && deadline <= nowMs {
			continue // expired while the snapshot sat on disk: stay dead
		}
		loaded[string(key)] = snapRecord{val: val, deadline: deadline}
	}
	s.replaceAll(loaded, meta)
	return nil
}

// snapRecord is one decoded snapshot record awaiting installation.
type snapRecord struct {
	val      SketchValue
	deadline int64
}

// replaceAll swaps the store's entire contents for the loaded values.
// Entries being replaced are marked dead so mutators that raced the
// swap retry against the new maps instead of writing into orphans; the
// resident-bytes gauge is rebuilt from the loaded values.
func (s *Store) replaceAll(loaded map[string]snapRecord, meta []byte) {
	fresh := make([]map[string]*entry, numShards)
	for i := range fresh {
		fresh[i] = make(map[string]*entry)
	}
	for k, rec := range loaded {
		e := &entry{val: rec.val, size: rec.val.SizeBytes()}
		e.deadline.Store(rec.deadline)
		s.residentBytes.Add(int64(e.size))
		fresh[shardIndex(k)][k] = e
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, e := range sh.m {
			e.mu.Lock()
			s.killLocked(e)
			e.mu.Unlock()
		}
		sh.m = fresh[i]
		sh.mu.Unlock()
	}
	s.SetMeta(meta)
}

// readBlob reads a uvarint-length-prefixed byte string with a size cap.
func readBlob(br *bufio.Reader, limit uint64) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > limit {
		return nil, fmt.Errorf("length %d exceeds limit %d", n, limit)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return nil, err
	}
	return b, nil
}

// SaveFile writes a snapshot atomically: to a temp file in the same
// directory, then rename.
func (s *Store) SaveFile(path string) error {
	tmp, err := os.CreateTemp(dirOf(path), ".elss-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := s.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFile replaces the store's contents with the snapshot at path.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.ReadSnapshot(f)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
