package server

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"exaloglog/internal/core"
)

func newBenchStore(b *testing.B) *Store {
	b.Helper()
	store, err := NewStore(core.RecommendedML(12))
	if err != nil {
		b.Fatal(err)
	}
	return store
}

func startBenchServer(b *testing.B) *Server {
	b.Helper()
	srv := NewServer(newBenchStore(b))
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return srv
}

// benchElements pre-formats element strings so the benchmark loop does
// not measure fmt.Sprintf.
func benchElements(n int) []string {
	els := make([]string, n)
	for i := range els {
		els[i] = fmt.Sprintf("el-%d", i)
	}
	return els
}

// BenchmarkStoreAdd measures single-goroutine Store.Add on one key —
// the per-insert floor with no contention.
func BenchmarkStoreAdd(b *testing.B) {
	store := newBenchStore(b)
	els := benchElements(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.Add("key", els[i%len(els)])
	}
}

// BenchmarkStoreParallelAdd hammers Store.Add from parallel goroutines,
// each with its own working set of keys. Under the global-mutex store
// every add serializes; the sharded store lets disjoint keys proceed
// concurrently.
func BenchmarkStoreParallelAdd(b *testing.B) {
	store := newBenchStore(b)
	els := benchElements(4096)
	var gid atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := gid.Add(1)
		keys := make([]string, 16)
		for i := range keys {
			keys[i] = fmt.Sprintf("g%d-key-%d", g, i)
		}
		i := 0
		for pb.Next() {
			store.Add(keys[i%len(keys)], els[i%len(els)])
			i++
		}
	})
}

// BenchmarkStoreCount measures Count over an 8-key union — the
// accumulator-reuse path (one merge per key, no per-key sketch
// allocation when configurations match).
func BenchmarkStoreCount(b *testing.B) {
	store := newBenchStore(b)
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		for j := 0; j < 10000; j++ {
			store.Add(keys[i], fmt.Sprintf("el-%d-%d", i, j))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Count(keys...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerPFAdd is the request-per-round-trip wire baseline: one
// client, one PFADD, one reply, repeat.
func BenchmarkServerPFAdd(b *testing.B) {
	srv := startBenchServer(b)
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	els := benchElements(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.PFAdd("key", els[i%len(els)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkPipelinedPFAdd measures wire-level PFADD throughput with the
// Pipeline API: batches of commands go out in one write and the server
// coalesces the reply flushes, so each op's cost is amortized protocol
// work instead of a full network round trip.
func BenchmarkPipelinedPFAdd(b *testing.B) {
	srv := startBenchServer(b)
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	els := benchElements(4096)
	const batch = 128
	p := c.Pipeline()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := batch
		if left := b.N - done; left < n {
			n = left
		}
		for i := 0; i < n; i++ {
			p.PFAdd("key", els[(done+i)%len(els)])
		}
		results, err := p.Exec()
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != n {
			b.Fatalf("got %d results, want %d", len(results), n)
		}
		done += n
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkDispatchPFAdd isolates the server's PFADD dispatch fast path
// — tokenized line in, reply bytes out, no network. The acceptance bar
// is 0 allocs/op: tokens stay []byte end to end and the reply is
// appended to a reusable scratch buffer.
func BenchmarkDispatchPFAdd(b *testing.B) {
	store := newBenchStore(b)
	srv := NewServer(store)
	cc := &connCtx{s: srv, w: bufio.NewWriterSize(io.Discard, 64*1024)}
	lines := make([][]byte, 512)
	for i := range lines {
		lines[i] = []byte(fmt.Sprintf("PFADD key el-%d\n", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if quit := cc.exec(lines[i%len(lines)]); quit {
			b.Fatal("unexpected quit")
		}
	}
}

// BenchmarkDispatchPFAddInstrumented is BenchmarkDispatchPFAdd with the
// per-verb stats accounting explicitly verified: after the loop, the
// PFADD counter must equal b.N (every dispatch was measured) and the
// loop must still report 0 allocs/op — the acceptance bar for hooking
// metrics into the fast path.
func BenchmarkDispatchPFAddInstrumented(b *testing.B) {
	store := newBenchStore(b)
	srv := NewServer(store)
	cc := &connCtx{s: srv, w: bufio.NewWriterSize(io.Discard, 64*1024)}
	lines := make([][]byte, 512)
	for i := range lines {
		lines[i] = []byte(fmt.Sprintf("PFADD key el-%d\n", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc.exec(lines[i%len(lines)])
	}
	b.StopTimer()
	if calls := srv.Stats().Verb("PFADD").Calls(); calls != uint64(b.N) {
		b.Fatalf("stats recorded %d PFADD calls for %d dispatches", calls, b.N)
	}
}

// BenchmarkDispatchWAdd isolates the WADD dispatch fast path — the
// windowed workload's write hot path. Like PFADD it must stay at
// 0 allocs/op once the key exists: tokens stay []byte, the timestamp
// is parsed without strconv's string conversion, and the accepted
// count is appended to the reusable scratch buffer.
func BenchmarkDispatchWAdd(b *testing.B) {
	store := newBenchStore(b)
	srv := NewServer(store)
	cc := &connCtx{s: srv, w: bufio.NewWriterSize(io.Discard, 64*1024)}
	lines := make([][]byte, 512)
	for i := range lines {
		// Timestamps advance so the ring rotates like live traffic.
		lines[i] = []byte(fmt.Sprintf("WADD key %d el-%d\n", 1_750_000_000_000+int64(i)*37, i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if quit := cc.exec(lines[i%len(lines)]); quit {
			b.Fatal("unexpected quit")
		}
	}
}

// BenchmarkDispatchPFCount isolates the PFCOUNT dispatch fast path.
// Since the per-entry estimate cache, a repeated single-key count on an
// unchanged sketch is O(1) — no accumulator merge, no register scan —
// so this measures the hot-key floor. BenchmarkDispatchPFCountInvalidated
// measures the recompute path the cache saves.
func BenchmarkDispatchPFCount(b *testing.B) {
	store := newBenchStore(b)
	for i := 0; i < 10000; i++ {
		store.Add("key", fmt.Sprintf("el-%d", i))
	}
	srv := NewServer(store)
	cc := &connCtx{s: srv, w: bufio.NewWriterSize(io.Discard, 64*1024)}
	line := []byte("PFCOUNT key\n")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc.exec(line)
	}
}

// BenchmarkDispatchPFCountInvalidated interleaves a mutating PFADD with
// every PFCOUNT, so each count misses the estimate cache and pays the
// full Estimate() over the dense register array — the pre-cache cost,
// and the bound for write-heavy keys.
func BenchmarkDispatchPFCountInvalidated(b *testing.B) {
	store := newBenchStore(b)
	for i := 0; i < 10000; i++ {
		store.Add("key", fmt.Sprintf("el-%d", i))
	}
	srv := NewServer(store)
	cc := &connCtx{s: srv, w: bufio.NewWriterSize(io.Discard, 64*1024)}
	count := []byte("PFCOUNT key\n")
	// Every add uses a never-seen element, so (almost) every one bumps
	// the entry version and the following count misses the cache. Built
	// in a reusable buffer so the loop measures dispatch, not Sprintf.
	prefix := []byte("PFADD key inv-")
	add := make([]byte, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		add = append(add[:0], prefix...)
		add = strconv.AppendInt(add, int64(i), 10)
		add = append(add, '\n')
		cc.exec(add)
		cc.exec(count)
	}
}

// BenchmarkDispatchPFCountUnion keeps the multi-key accumulator path
// honest: an 8-key union cannot use the per-entry cache and must still
// be merge-bound, not allocation-bound.
func BenchmarkDispatchPFCountUnion(b *testing.B) {
	store := newBenchStore(b)
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		for j := 0; j < 10000; j++ {
			store.Add(keys[i], fmt.Sprintf("el-%d-%d", i, j))
		}
	}
	srv := NewServer(store)
	cc := &connCtx{s: srv, w: bufio.NewWriterSize(io.Discard, 64*1024)}
	line := []byte("PFCOUNT " + strings.Join(keys, " ") + "\n")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc.exec(line)
	}
}

// BenchmarkServerParallelPFAdd measures wire-level PFADD throughput with
// one connection per worker, each writing its own keys — the end-to-end
// number the sharded store and the zero-allocation dispatch fast path
// exist to move.
func BenchmarkServerParallelPFAdd(b *testing.B) {
	srv := startBenchServer(b)
	els := benchElements(4096)
	var gid atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := gid.Add(1)
		c, err := Dial(srv.Addr())
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		keys := make([]string, 16)
		for i := range keys {
			keys[i] = fmt.Sprintf("g%d-key-%d", g, i)
		}
		i := 0
		for pb.Next() {
			if _, err := c.PFAdd(keys[i%len(keys)], els[i%len(els)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}
