package server

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// TestClientRejectsBadTokens: an element containing whitespace would be
// split into several elements (or injected as a second command) on the
// wire; the client must refuse to send it instead of silently
// corrupting the stream.
func TestClientRejectsBadTokens(t *testing.T) {
	_, c := startServer(t)
	bad := []string{"a b", "a\tb", "a\nb", "a\rb", ""}
	for _, el := range bad {
		if _, err := c.PFAdd("key", el); err == nil {
			t.Errorf("PFAdd with element %q succeeded", el)
		}
		if _, err := c.PFAdd(el, "ok"); err == nil {
			t.Errorf("PFAdd with key %q succeeded", el)
		}
		if _, err := c.PFCount(el); err == nil {
			t.Errorf("PFCount with key %q succeeded", el)
		}
	}
	if _, err := c.Do(); err == nil {
		t.Error("empty Do succeeded")
	}
	// A rejected command must not desynchronize the connection.
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unusable after rejected tokens: %v", err)
	}
	// The whitespace-containing element never reached the server as
	// multiple elements: a clean insert of 1 element counts 1.
	if _, err := c.PFAdd("clean", "x"); err != nil {
		t.Fatal(err)
	}
	if n, _ := c.PFCount("clean"); n != 1 {
		t.Errorf("clean count = %d, want 1", n)
	}
}

// TestPipelineExec drives the Pipeline API end to end: queued commands
// go out as one batch, and results come back in order with per-command
// errors in place.
func TestPipelineExec(t *testing.T) {
	_, c := startServer(t)
	p := c.Pipeline()
	const n = 500
	for i := 0; i < n; i++ {
		p.PFAdd("pipe", fmt.Sprintf("el-%d", i))
	}
	p.PFCount("pipe")
	p.Do("DUMP", "missing")
	p.Do("PING")
	if p.Len() != n+3 {
		t.Fatalf("Len = %d, want %d", p.Len(), n+3)
	}
	results, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n+3 {
		t.Fatalf("got %d results, want %d", len(results), n+3)
	}
	for i := 0; i < n; i++ {
		// A distinct element usually changes the sketch (":1") but may
		// legitimately not (":0") — only an error is wrong here.
		if results[i].Err != nil || (results[i].Value != "1" && results[i].Value != "0") {
			t.Fatalf("result %d = %+v, want 0 or 1", i, results[i])
		}
	}
	count, err := strconv.Atoi(results[n].Value)
	if err != nil || count < n*95/100 || count > n*105/100 {
		t.Errorf("pipelined PFCOUNT = %q (%v), want ≈%d", results[n].Value, err, n)
	}
	if results[n+1].Err == nil {
		t.Error("DUMP of missing key inside pipeline succeeded")
	}
	if results[n+2].Value != "PONG" {
		t.Errorf("pipelined PING = %+v", results[n+2])
	}
	// The pipeline is reusable after Exec.
	if p.Len() != 0 {
		t.Fatalf("Len after Exec = %d, want 0", p.Len())
	}
	p.PFCount("pipe")
	results, err = p.Exec()
	if err != nil || len(results) != 1 {
		t.Fatalf("reused pipeline: %v, %d results", err, len(results))
	}
	if got, _ := strconv.Atoi(results[0].Value); got < n*95/100 || got > n*105/100 {
		t.Errorf("reused pipeline PFCOUNT = %q, want ≈%d", results[0].Value, n)
	}
}

// TestPipelinePoisoned: one invalid token poisons the whole batch —
// Exec sends nothing and reports the error, and the connection stays
// in sync.
func TestPipelinePoisoned(t *testing.T) {
	_, c := startServer(t)
	p := c.Pipeline()
	p.PFAdd("ok", "fine")
	p.PFAdd("key", "bad element")
	p.PFAdd("ok", "also-fine")
	results, err := p.Exec()
	if err == nil {
		t.Fatal("poisoned pipeline Exec succeeded")
	}
	if !strings.Contains(err.Error(), "bad element") {
		t.Errorf("error %q does not name the offending token", err)
	}
	if results != nil {
		t.Errorf("poisoned Exec returned results: %+v", results)
	}
	// Nothing was sent: the key must not exist.
	if _, err := c.Dump("ok"); err == nil {
		t.Error("poisoned pipeline partially executed")
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unusable after poisoned pipeline: %v", err)
	}
	// The pipeline resets after the failed Exec and works again.
	p.PFAdd("ok", "fine")
	if results, err := p.Exec(); err != nil || len(results) != 1 {
		t.Fatalf("pipeline unusable after poison: %v", err)
	}
}

// TestPipelineEmptyExec: executing an empty pipeline is a no-op.
func TestPipelineEmptyExec(t *testing.T) {
	_, c := startServer(t)
	results, err := c.Pipeline().Exec()
	if err != nil || results != nil {
		t.Fatalf("empty Exec = %+v, %v", results, err)
	}
}
