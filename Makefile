# Developer entry points. CI runs the same commands.

GO ?= go

# The serving-path benchmarks whose trajectory BENCH_serving.json tracks.
SERVING_BENCH = BenchmarkStoreAdd|BenchmarkStoreParallelAdd|BenchmarkStoreCount|BenchmarkServerPFAdd|BenchmarkServerParallelPFAdd|BenchmarkPipelinedPFAdd|BenchmarkDispatchPFAdd|BenchmarkDispatchPFCount|BenchmarkClusterRoutedPFAdd|BenchmarkClusterBatchedPFAdd|BenchmarkClusterFanoutPFCount

.PHONY: build test race bench bench-smoke fuzz

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race -timeout 5m ./server/ ./cluster/

# bench runs the serving-path benchmarks and records them (parsed +
# benchstat-comparable raw lines) in BENCH_serving.json. Compare across
# commits with: jq -r '.raw[]' BENCH_serving.json | benchstat old /dev/stdin
bench:
	$(GO) test -run '^$$' -bench '$(SERVING_BENCH)' -benchmem -benchtime=1s -cpu 1,8 ./server/ ./cluster/ \
		| $(GO) run ./cmd/ell-benchjson > BENCH_serving.json
	@echo wrote BENCH_serving.json

# bench-smoke compiles and runs every benchmark once — a fast
# does-it-still-run check, not a measurement. CI runs this non-blocking.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./server/ ./cluster/

fuzz:
	$(GO) test -fuzz FuzzMapDecode -fuzztime 30s ./cluster/
