# Developer entry points. CI runs the same commands.

GO ?= go

# The serving-path benchmarks whose trajectory BENCH_serving.json tracks.
SERVING_BENCH = BenchmarkStoreAdd|BenchmarkStoreParallelAdd|BenchmarkStoreCount|BenchmarkServerPFAdd|BenchmarkServerParallelPFAdd|BenchmarkPipelinedPFAdd|BenchmarkDispatchPFAdd|BenchmarkDispatchPFAddInstrumented|BenchmarkDispatchPFCount|BenchmarkDispatchWAdd|BenchmarkClusterRoutedPFAdd|BenchmarkClusterBatchedPFAdd|BenchmarkClusterFanoutPFCount|BenchmarkClusterRoutedWAdd|BenchmarkClusterWindowCount|BenchmarkWindowInsert|BenchmarkWindowEstimate|BenchmarkCodecEncode|BenchmarkCodecDecode

.PHONY: build vet test race bench bench-smoke loadtest fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

race:
	$(GO) test -race -timeout 5m ./server/ ./cluster/ ./window/

# bench runs the serving-path benchmarks and records them (parsed +
# benchstat-comparable raw lines) in BENCH_serving.json. Compare across
# commits with: jq -r '.raw[]' BENCH_serving.json | benchstat old /dev/stdin
bench:
	$(GO) test -run '^$$' -bench '$(SERVING_BENCH)' -benchmem -benchtime=1s -cpu 1,8 ./server/ ./cluster/ ./window/ ./internal/compress/ \
		| $(GO) run ./cmd/ell-benchjson > BENCH_serving.json
	@echo wrote BENCH_serving.json

# bench-smoke compiles and runs every benchmark once — a fast
# does-it-still-run check, not a measurement. CI runs this non-blocking.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./server/ ./cluster/ ./window/ ./internal/compress/

# loadtest is the cluster-level smoke: ell-loader boots 3 in-process
# nodes and drives a mixed zipf workload for 30s — once through a
# coordinator node that forwards to owners, once single-hop through the
# smart client against strict-routing nodes. Each JSON result is folded
# into BENCH_serving.json as a pkg "cluster-load" row keyed by its
# route (replacing the previous row of the same shape), so the two
# routes stay comparable across runs. CI runs this non-blocking.
loadtest:
	$(GO) run ./cmd/ell-loader -self 3 -replicas 2 -conns 4 -depth 32 \
		-duration 30s -warmup 2s -keys 1000 -dist zipf -out load.json
	$(GO) run ./cmd/ell-benchjson -in BENCH_serving.json -load load.json </dev/null > BENCH_serving.json.tmp
	mv BENCH_serving.json.tmp BENCH_serving.json
	$(GO) run ./cmd/ell-loader -self 3 -replicas 2 -conns 4 -depth 32 \
		-duration 30s -warmup 2s -keys 1000 -dist zipf -single-hop -out load.json
	$(GO) run ./cmd/ell-benchjson -in BENCH_serving.json -load load.json </dev/null > BENCH_serving.json.tmp
	mv BENCH_serving.json.tmp BENCH_serving.json
	rm -f load.json
	@echo folded coordinator and single-hop cluster load rows into BENCH_serving.json

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzMapDecode -fuzztime 30s ./cluster/
	$(GO) test -run '^$$' -fuzz FuzzGossipDecode -fuzztime 30s ./cluster/
	$(GO) test -run '^$$' -fuzz FuzzTransferDecode -fuzztime 30s ./cluster/
	$(GO) test -run '^$$' -fuzz FuzzCodecDecode -fuzztime 30s ./internal/compress/
	$(GO) test -run '^$$' -fuzz FuzzCodecRoundTrip -fuzztime 30s ./internal/compress/
	$(GO) test -run '^$$' -fuzz FuzzWindowDecode -fuzztime 30s ./window/
	$(GO) test -run '^$$' -fuzz FuzzWindowVerbFraming -fuzztime 30s ./server/
	$(GO) test -run '^$$' -fuzz FuzzSnapshotV4Decode -fuzztime 30s ./server/
	$(GO) test -run '^$$' -fuzz FuzzLifecycleVerbFraming -fuzztime 30s ./server/
